// Package core implements the Object Clustering Benchmark (OCB) itself:
// the parameterized database of Section 3.2 (Fig. 1 and Fig. 2, Table 1),
// the clustering-oriented workload of Section 3.3 (Fig. 3, Table 2), the
// multi-client cold/warm execution protocol, and the metrics OCB reports
// (response time, accessed objects and I/Os, globally and per transaction
// type).
package core

import (
	"fmt"
	"time"

	"ocb/internal/backend"
	"ocb/internal/buffer"
	"ocb/internal/lewis"
)

// Params carries every OCB parameter: the database parameters of Table 1,
// the workload parameters of Table 2, and the testbed geometry (page size,
// buffer) that the paper fixes by hardware choice.
//
// Classes are numbered 1..NC; class 0 is the NIL class (reachable when
// INFCLASS = 0, which makes NIL references possible, as in the paper's
// Table 3 preset). Objects are numbered 1..NO.
type Params struct {
	// ---- Database parameters (Table 1) ----

	// NC is the number of classes in the database. Default 20.
	NC int
	// MaxNRef is MAXNREF(i), the maximum number of references per class.
	// MaxNRefPerClass overrides it per class (1-based index, entry 0
	// unused) when non-nil. Default 10.
	MaxNRef         int
	MaxNRefPerClass []int
	// BaseSize is BASESIZE(i), the per-class increment size in bytes used
	// to compute InstanceSize after the inheritance graph is processed.
	// BaseSizePerClass overrides it per class when non-nil. Default 50.
	BaseSize         int
	BaseSizePerClass []int
	// NO is the total number of objects. Default 20000.
	NO int
	// NRefT is the number of reference types (inheritance, aggregation,
	// user associations, ...). Default 4.
	NRefT int
	// NumAcyclicTypes declares reference types 1..NumAcyclicTypes as
	// hierarchies that do not allow cycles (the consistency step of the
	// generation algorithm suppresses cycles from them). Type 1 is the
	// inheritance type whose edges propagate BASESIZE into InstanceSize.
	// Default 2 (inheritance + composition).
	NumAcyclicTypes int
	// InfClass and SupClass bound the set of referenced classes, modeling
	// locality of reference at the class level. Defaults 1 and NC.
	// InfClass = 0 allows NIL class references.
	InfClass, SupClass int
	// InfRef and SupRef bound the set of referenced objects (OO1-style
	// locality of reference). Defaults 1 and NO.
	InfRef, SupRef int
	// Dist1..Dist4 are the random distributions of Table 1:
	// reference types, class references, objects in classes, and object
	// references. All default to uniform.
	Dist1, Dist2, Dist3, Dist4 lewis.Distribution

	// ---- Workload parameters (Table 2) ----

	// SetDepth, SimDepth, HieDepth, StoDepth are the depths of the four
	// transaction types. Defaults 3, 3, 5, 50.
	SetDepth, SimDepth, HieDepth, StoDepth int
	// ColdN and HotN are the transaction counts of the cold and warm runs.
	// Defaults 1000 and 10000.
	ColdN, HotN int
	// Think is the average latency between transactions. Default 0.
	Think time.Duration
	// PSet, PSimple, PHier, PStoch are the occurrence probabilities of the
	// four transaction types; they must sum to 1. Defaults 0.25 each.
	PSet, PSimple, PHier, PStoch float64
	// PReverse is the probability that a transaction runs reversed,
	// ascending the graphs through backward references. Default 0
	// (an OCB extension hook; the paper's §3.3 defines reversibility).
	PReverse float64
	// PUpdate, PInsert, PDelete, PScan and PRange are the occurrence
	// probabilities of the generic transaction set of the paper's
	// Section 5 extension (operations initially discarded because they
	// cannot benefit from clustering: updates, creations/deletions,
	// HyperModel's Sequential Scan and Range Lookup). All default to 0,
	// which keeps the workload the paper's clustering-oriented one; the
	// sum of all nine probabilities must be 1.
	PUpdate, PInsert, PDelete, PScan, PRange float64
	// Dist5 is RAND5, the transaction root object distribution.
	// Default uniform.
	Dist5 lewis.Distribution
	// ClientN is the number of concurrent benchmark clients. Default 1.
	ClientN int
	// OpenLoop switches think-time pacing: false (default) is a closed
	// loop — each client sleeps Think after every transaction; true is an
	// open loop — each client issues transactions on a fixed arrival
	// schedule of one per Think, regardless of completion times, so
	// service-time jitter does not throttle offered load.
	OpenLoop bool

	// ---- Testbed geometry (Section 4.2 material conditions) ----

	// Backend names the system-under-test driver the database is built
	// on ("" selects "paged", the benchmark's own store). Any driver
	// registered with the backend package is valid; the workload runs
	// unchanged against all of them.
	Backend string
	// BackendOptions are driver-specific key=value settings, validated by
	// the driver (unknown keys are rejected naming the valid ones). They
	// take precedence over the typed geometry fields below.
	BackendOptions map[string]string
	// PageSize is the disk page size in bytes for paged backends.
	// Default 4096. Backends without pages ignore it.
	PageSize int
	// BufferPages is the number of page frames of main memory. Default 512.
	BufferPages int
	// BufferPolicy is the page replacement policy. Default LRU.
	BufferPolicy buffer.Policy
	// StoreShards is the store's lock-sharding degree (object table and
	// buffer pool). 0 selects it automatically: 1 when ClientN == 1 —
	// bit-for-bit the original single-mutex store, keeping single-client
	// runs exactly reproducible — and 16 otherwise, so multi-client phases
	// scale with cores instead of serializing on one mutex.
	StoreShards int

	// Seed drives all random generation. Runs with equal Params (including
	// Seed) are identical bit for bit.
	Seed int64
}

// DefaultParams returns the paper's default parameterization: Table 1 for
// the database, Table 2 for the workload, Section 4.2 for the testbed.
func DefaultParams() Params {
	return Params{
		NC:              20,
		MaxNRef:         10,
		BaseSize:        50,
		NO:              20000,
		NRefT:           4,
		NumAcyclicTypes: 2,
		InfClass:        1,
		SupClass:        20,
		InfRef:          1,
		SupRef:          20000,
		Dist1:           lewis.Uniform{},
		Dist2:           lewis.Uniform{},
		Dist3:           lewis.Uniform{},
		Dist4:           lewis.Uniform{},

		SetDepth: 3,
		SimDepth: 3,
		HieDepth: 5,
		StoDepth: 50,
		ColdN:    1000,
		HotN:     10000,
		Think:    0,
		PSet:     0.25,
		PSimple:  0.25,
		PHier:    0.25,
		PStoch:   0.25,
		Dist5:    lewis.Uniform{},
		ClientN:  1,

		PageSize:     4096,
		BufferPages:  512,
		BufferPolicy: buffer.LRU,

		Seed: 1998, // EDBT '98
	}
}

// CluBParams returns the Table 3 parameterization that tunes OCB's database
// to approximate DSTC-CluB's (itself derived from OO1): two classes (Part,
// Connection), three references of constant type, constant class targeting,
// round-robin class membership, and the OO1 "special" reference-zone object
// distribution. Used by the Table 4 genericity experiment.
func CluBParams() Params {
	p := DefaultParams()
	p.NC = 2
	p.MaxNRef = 3
	p.BaseSize = 50
	p.NO = 20000
	p.NRefT = 3
	p.InfClass = 0 // NIL references possible, per Table 3
	p.SupClass = 2
	// OO1's RefZone: parts connect to parts with ids in
	// [Id-RefZone, Id+RefZone] with probability 0.9.
	p.InfRef = 1
	p.SupRef = 20000
	// All references are of type 3 — a user association, the one kind the
	// consistency step leaves cyclic, matching OO1's part-connection graph.
	p.Dist1 = lewis.Constant{Offset: 2}
	p.Dist2 = lewis.Constant{Offset: 1} // all classes reference class 1 (parts)
	p.Dist3 = &lewis.RoundRobin{}       // objects spread over classes in fixed proportion
	// OO1's locality of reference: 90% of links land within RefZone of the
	// referencing part's id. OO1 sizes the zone at 1% of the database.
	p.Dist4 = lewis.RefZone{Zone: p.NO / 100, PLocal: 0.9}

	// CluB runs a single transaction type: OO1's depth-first traversal
	// (depth 7 from the root part).
	p.PSet = 0
	p.PSimple = 1
	p.PHier = 0
	p.PStoch = 0
	p.SimDepth = 7
	return p
}

// Validate reports the first inconsistency in the parameter set.
func (p Params) Validate() error {
	switch {
	case p.NC < 1:
		return fmt.Errorf("ocb: NC = %d, need >= 1", p.NC)
	case p.NO < 1:
		return fmt.Errorf("ocb: NO = %d, need >= 1", p.NO)
	case p.MaxNRef < 0:
		return fmt.Errorf("ocb: MAXNREF = %d, need >= 0", p.MaxNRef)
	case p.NRefT < 1:
		return fmt.Errorf("ocb: NREFT = %d, need >= 1", p.NRefT)
	case p.NumAcyclicTypes < 0 || p.NumAcyclicTypes > p.NRefT:
		return fmt.Errorf("ocb: NumAcyclicTypes = %d, need 0..NREFT", p.NumAcyclicTypes)
	case p.InfClass < 0 || p.InfClass > p.SupClass || p.SupClass > p.NC:
		return fmt.Errorf("ocb: class interval [%d, %d] invalid for NC = %d", p.InfClass, p.SupClass, p.NC)
	case p.InfRef < 1 || p.InfRef > p.SupRef || p.SupRef > p.NO:
		return fmt.Errorf("ocb: object interval [%d, %d] invalid for NO = %d", p.InfRef, p.SupRef, p.NO)
	case p.BaseSize < 0:
		return fmt.Errorf("ocb: BASESIZE = %d, need >= 0", p.BaseSize)
	}
	if p.MaxNRefPerClass != nil && len(p.MaxNRefPerClass) != p.NC+1 {
		return fmt.Errorf("ocb: MaxNRefPerClass needs length NC+1 = %d, got %d", p.NC+1, len(p.MaxNRefPerClass))
	}
	if p.BaseSizePerClass != nil && len(p.BaseSizePerClass) != p.NC+1 {
		return fmt.Errorf("ocb: BaseSizePerClass needs length NC+1 = %d, got %d", p.NC+1, len(p.BaseSizePerClass))
	}
	if p.Dist1 == nil || p.Dist2 == nil || p.Dist3 == nil || p.Dist4 == nil || p.Dist5 == nil {
		return fmt.Errorf("ocb: all five distributions must be set (use DefaultParams as base)")
	}
	switch {
	case p.SetDepth < 0 || p.SimDepth < 0 || p.HieDepth < 0 || p.StoDepth < 0:
		return fmt.Errorf("ocb: negative transaction depth")
	case p.ColdN < 0 || p.HotN < 0:
		return fmt.Errorf("ocb: negative transaction count")
	case p.ClientN < 1:
		return fmt.Errorf("ocb: CLIENTN = %d, need >= 1", p.ClientN)
	case p.Think < 0:
		return fmt.Errorf("ocb: negative THINK time")
	case p.PReverse < 0 || p.PReverse > 1:
		return fmt.Errorf("ocb: PReverse = %v, need [0, 1]", p.PReverse)
	}
	sum := p.PSet + p.PSimple + p.PHier + p.PStoch +
		p.PUpdate + p.PInsert + p.PDelete + p.PScan + p.PRange
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ocb: transaction probabilities sum to %v, need 1", sum)
	}
	for _, pr := range []float64{p.PSet, p.PSimple, p.PHier, p.PStoch,
		p.PUpdate, p.PInsert, p.PDelete, p.PScan, p.PRange} {
		if pr < 0 {
			return fmt.Errorf("ocb: negative transaction probability")
		}
	}
	if p.PageSize < 0 || p.BufferPages < 0 {
		return fmt.Errorf("ocb: negative testbed geometry")
	}
	if p.StoreShards < 0 {
		return fmt.Errorf("ocb: StoreShards = %d, need >= 0", p.StoreShards)
	}
	return nil
}

// backendName resolves the effective backend driver name.
func (p Params) backendName() string {
	if p.Backend == "" {
		return backend.DefaultName
	}
	return p.Backend
}

// storeShards resolves the effective lock-sharding degree (see the
// StoreShards field for the auto rule).
func (p Params) storeShards() int {
	if p.StoreShards > 0 {
		return p.StoreShards
	}
	if p.ClientN > 1 {
		return 16
	}
	return 1
}

// MaxNRefOf returns MAXNREF(class).
func (p Params) MaxNRefOf(class int) int {
	if p.MaxNRefPerClass != nil {
		return p.MaxNRefPerClass[class]
	}
	return p.MaxNRef
}

// BaseSizeOf returns BASESIZE(class).
func (p Params) BaseSizeOf(class int) int {
	if p.BaseSizePerClass != nil {
		return p.BaseSizePerClass[class]
	}
	return p.BaseSize
}

// isAcyclicType reports whether reference type t is a hierarchy that must
// stay cycle-free.
func (p Params) isAcyclicType(t int) bool { return t >= 1 && t <= p.NumAcyclicTypes }

// isInheritanceType reports whether reference type t propagates BASESIZE
// through the inheritance graph.
func (p Params) isInheritanceType(t int) bool { return t == 1 && p.NumAcyclicTypes >= 1 }
