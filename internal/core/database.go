package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// Object is one instance of an OCB class (the OBJECT side of Fig. 1).
// Navigation metadata (ORef, BackRef) lives in memory — what the paper
// keeps as swizzled pointers — while the object's pages live in the store;
// every visit faults through Store.Access, so I/O accounting is exact.
type Object struct {
	// OID is the store identity; object #i of the generation algorithm
	// has OID i.
	OID backend.OID
	// Class is the ClassPtr of Fig. 1 (class id, 1..NC).
	Class int
	// ORef are the typed forward references (NilOID allowed).
	ORef []backend.OID
	// BackRef are the reverse references, maintained symmetrically to the
	// ORef arrays pointing at this object.
	BackRef []backend.OID
}

// Database is a fully generated OCB object base bound to its store.
type Database struct {
	// P are the parameters the database was generated with.
	P Params
	// Schema is the generated class graph.
	Schema *Schema
	// Objects is indexed by OID (Objects[0] is nil).
	Objects []*Object
	// Store is the system under test: any registered backend driver.
	// Placement and I/O accounting live behind its interface.
	Store backend.Backend
	// GenTime is the wall-clock duration of Generate, the metric of the
	// paper's Fig. 4 (database average creation time).
	GenTime time.Duration

	// live tracks the live object set under the generic workload's
	// insertions and deletions (swap-remove list + index).
	live    []backend.OID
	liveIdx map[backend.OID]int

	// liveSnap is the ascending-OID snapshot LiveOIDs serves without
	// rebuilding an O(n) slice per call. Insertions extend it in place
	// (OIDs are issued in increasing order, so sortedness is preserved);
	// deletions invalidate it and the next LiveOIDs rebuilds lazily.
	// snapMu guards the rebuild so concurrent readers (which only hold
	// mu.RLock) do not race; liveSnapOK is the double-checked flag.
	snapMu     sync.Mutex
	liveSnap   []backend.OID
	liveSnapOK atomic.Bool

	// mu guards the in-memory object graph (Objects, class iterators,
	// BackRefs, the live set) against the generic workload's structural
	// mutations: Executor.Exec share-locks it for read-only transaction
	// types and takes it exclusively for insertions and deletions, so
	// CLIENTN > 1 stays safe even under the Section 5 mutating workload.
	mu sync.RWMutex
}

// Generate runs the full database generation algorithm of Fig. 2 and
// returns a ready-to-benchmark database. Generation is deterministic in
// p.Seed. The store's statistics are reset afterwards so that generation
// I/O does not pollute workload measurements.
func Generate(p Params) (*Database, error) {
	//ocblint:allow determinism -- harness timing, not op logic
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := lewis.New(p.Seed)

	schema, err := GenerateSchema(p, src)
	if err != nil {
		return nil, err
	}

	st, err := backend.Open(p.Backend, backend.Config{
		PageSize:    p.PageSize,
		BufferPages: p.BufferPages,
		Policy:      p.BufferPolicy,
		Shards:      p.storeShards(),
		Options:     p.BackendOptions,
	})
	if err != nil {
		return nil, err
	}

	db := &Database{
		P:       p,
		Schema:  schema,
		Objects: make([]*Object, p.NO+1),
		Store:   st,
	}

	// Instances — objects: class drawn via DIST3, object created in
	// creation order (which interleaves classes on disk, the placement a
	// clustering policy must later undo), iterator updated.
	for i := 1; i <= p.NO; i++ {
		classID := p.Dist3.Draw(src, 1, p.NC, i)
		class := schema.Class(classID)
		oid, err := st.Create(class.DiskSize())
		if err != nil {
			return nil, fmt.Errorf("ocb: creating object %d (class %d): %w", i, classID, err)
		}
		if oid != backend.OID(i) {
			return nil, fmt.Errorf("ocb: store issued OID %d for object %d", oid, i)
		}
		obj := &Object{
			OID:   oid,
			Class: classID,
			ORef:  make([]backend.OID, class.MaxNRef),
		}
		db.Objects[i] = obj
		class.Iterator = append(class.Iterator, oid)
	}

	// Instances — inter-object references: the Fig. 2 loop iterates
	// class by class over each class's iterator, drawing the referenced
	// iterator position l via DIST4 within [INFREF, SUPREF] (clamped to
	// the target iterator's extent). The locality center for zone-based
	// distributions is the object's own id scaled into the target
	// iterator, reproducing OO1's [Id-RefZone, Id+RefZone] behaviour.
	for ci := 1; ci <= p.NC; ci++ {
		class := schema.Class(ci)
		for _, oid := range class.Iterator {
			obj := db.Objects[oid]
			for k := 0; k < class.MaxNRef; k++ {
				targetClass := schema.Class(class.CRef[k])
				if targetClass == nil || len(targetClass.Iterator) == 0 {
					obj.ORef[k] = backend.NilOID
					continue
				}
				count := len(targetClass.Iterator)
				lo := clampInt(p.InfRef, 1, count)
				hi := clampInt(p.SupRef, 1, count)
				center := scaleIndex(int(oid), p.NO, count)
				l := p.Dist4.Draw(src, lo, hi, center)
				target := targetClass.Iterator[l-1]
				obj.ORef[k] = target
				db.Objects[target].BackRef = append(db.Objects[target].BackRef, oid)
			}
		}
	}

	if err := st.Commit(); err != nil {
		return nil, err
	}
	db.initLive()
	//ocblint:allow determinism -- harness timing, not op logic
	db.GenTime = time.Since(start)
	st.ResetStats()
	return db, nil
}

// MustGenerate is Generate for known-good parameters; it panics on error.
func MustGenerate(p Params) *Database {
	db, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return db
}

// Close releases the database's store: durable backends close their
// files (an ephemeral store also removes its scratch directory), while
// in-memory backends make this a no-op. Whoever generates or loads a
// database owns closing it; the database is unusable afterwards.
func (db *Database) Close() error { return backend.Shutdown(db.Store) }

// Object returns the object with the given OID, or nil.
func (db *Database) Object(oid backend.OID) *Object {
	if oid == backend.NilOID || int(oid) >= len(db.Objects) {
		return nil
	}
	return db.Objects[oid]
}

// NO returns the number of objects.
func (db *Database) NO() int { return len(db.Objects) - 1 }

// ClassOf returns the class id of an object (0 if unknown), in the shape
// clustering policies want for type-based grouping.
func (db *Database) ClassOf(oid backend.OID) (int, bool) {
	o := db.Object(oid)
	if o == nil {
		return 0, false
	}
	return o.Class, true
}

// AllOIDs enumerates every live object id in ascending order, the
// enumerator whole-database policies need. Unlike LiveOIDs it returns a
// fresh slice the caller may reorder freely.
func (db *Database) AllOIDs() []backend.OID {
	return append([]backend.OID(nil), db.LiveOIDs()...)
}

// CheckDatabase verifies the object-graph invariants: reference targets
// exist and belong to the class the schema dictates, reference arrays have
// MAXNREF slots, and BackRef is exactly symmetric to ORef. Databases that
// have seen generic-workload insertions and deletions are checked over
// their live object set.
func CheckDatabase(db *Database) error {
	p := db.P
	mutated := len(db.Objects)-1 != p.NO || db.NumLive() != p.NO
	// Live-set invariant: the swap-remove tracking structures and the
	// ascending snapshot must agree with each other and with Objects.
	if len(db.live) != len(db.liveIdx) {
		return fmt.Errorf("ocb: live list holds %d entries, index %d", len(db.live), len(db.liveIdx))
	}
	for i, oid := range db.live {
		if db.liveIdx[oid] != i {
			return fmt.Errorf("ocb: live index for %d says %d, list position is %d", oid, db.liveIdx[oid], i)
		}
		if db.Object(oid) == nil {
			return fmt.Errorf("ocb: live list names deleted object %d", oid)
		}
	}
	snap := db.LiveOIDs()
	if len(snap) != db.NumLive() {
		return fmt.Errorf("ocb: live snapshot holds %d entries, live set says %d", len(snap), db.NumLive())
	}
	for i, oid := range snap {
		if i > 0 && snap[i-1] >= oid {
			return fmt.Errorf("ocb: live snapshot out of order at %d (%d >= %d)", i, snap[i-1], oid)
		}
		if _, ok := db.liveIdx[oid]; !ok {
			return fmt.Errorf("ocb: live snapshot names untracked object %d", oid)
		}
	}
	if n := db.Store.Stats().Objects; n != db.NumLive() {
		return fmt.Errorf("ocb: store holds %d objects, live set says %d",
			n, db.NumLive())
	}
	iterSum := 0
	for ci := 1; ci <= p.NC; ci++ {
		iterSum += len(db.Schema.Class(ci).Iterator)
	}
	if iterSum != db.NumLive() {
		return fmt.Errorf("ocb: iterators cover %d objects, live set says %d", iterSum, db.NumLive())
	}
	type link struct {
		from, to backend.OID
	}
	forward := make(map[link]int)
	for i := 1; i < len(db.Objects); i++ {
		obj := db.Objects[i]
		if obj == nil {
			if !mutated {
				return fmt.Errorf("ocb: object %d missing", i)
			}
			continue
		}
		class := db.Schema.Class(obj.Class)
		if class == nil {
			return fmt.Errorf("ocb: object %d has bad class %d", i, obj.Class)
		}
		if len(obj.ORef) != class.MaxNRef {
			return fmt.Errorf("ocb: object %d has %d ref slots, want %d", i, len(obj.ORef), class.MaxNRef)
		}
		if !db.Store.Exists(obj.OID) {
			return fmt.Errorf("ocb: object %d not in store", i)
		}
		for k, target := range obj.ORef {
			if target == backend.NilOID {
				if class.CRef[k] != NilClass && !mutated {
					// A NIL object reference with a non-NIL class target can
					// only happen when the target class has no instances
					// (or, on mutated databases, when the target was
					// deleted).
					tc := db.Schema.Class(class.CRef[k])
					if tc != nil && len(tc.Iterator) > 0 {
						return fmt.Errorf("ocb: object %d ref %d NIL despite instances of class %d", i, k, class.CRef[k])
					}
				}
				continue
			}
			tobj := db.Object(target)
			if tobj == nil {
				return fmt.Errorf("ocb: object %d ref %d dangles (%d)", i, k, target)
			}
			if tobj.Class != class.CRef[k] {
				return fmt.Errorf("ocb: object %d ref %d targets class %d, schema says %d",
					i, k, tobj.Class, class.CRef[k])
			}
			forward[link{obj.OID, target}]++
		}
	}
	// BackRef symmetry: the multiset of (from, to) forward links must
	// equal the multiset of (from, to) reconstructed from BackRefs.
	backward := make(map[link]int)
	for i := 1; i < len(db.Objects); i++ {
		if db.Objects[i] == nil {
			continue
		}
		for _, from := range db.Objects[i].BackRef {
			backward[link{from, backend.OID(i)}]++
		}
	}
	if len(forward) != len(backward) {
		return fmt.Errorf("ocb: %d forward links vs %d backward links", len(forward), len(backward))
	}
	for l, n := range forward {
		if backward[l] != n {
			return fmt.Errorf("ocb: link %d->%d has %d forward, %d backward", l.from, l.to, n, backward[l])
		}
	}
	return nil
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// scaleIndex maps an object id in [1, no] proportionally into [1, count].
func scaleIndex(id, no, count int) int {
	if no <= 1 || count <= 1 {
		return 1
	}
	return 1 + (id-1)*(count-1)/(no-1)
}
