package core

import (
	"strings"
	"testing"
	"time"

	"ocb/internal/lewis"
)

// TestDefaultParamsMatchTable1 pins the database defaults to the paper's
// Table 1 (experiment T1 of DESIGN.md).
func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.NC != 20 {
		t.Errorf("NC = %d, Table 1 says 20", p.NC)
	}
	if p.MaxNRef != 10 {
		t.Errorf("MAXNREF = %d, Table 1 says 10", p.MaxNRef)
	}
	if p.BaseSize != 50 {
		t.Errorf("BASESIZE = %d, Table 1 says 50", p.BaseSize)
	}
	if p.NO != 20000 {
		t.Errorf("NO = %d, Table 1 says 20000", p.NO)
	}
	if p.NRefT != 4 {
		t.Errorf("NREFT = %d, Table 1 says 4", p.NRefT)
	}
	if p.InfClass != 1 || p.SupClass != p.NC {
		t.Errorf("class interval [%d, %d], Table 1 says [1, NC]", p.InfClass, p.SupClass)
	}
	if p.InfRef != 1 || p.SupRef != p.NO {
		t.Errorf("object interval [%d, %d], Table 1 says [1, NO]", p.InfRef, p.SupRef)
	}
	for i, d := range []lewis.Distribution{p.Dist1, p.Dist2, p.Dist3, p.Dist4} {
		if d.Name() != "uniform" {
			t.Errorf("DIST%d = %s, Table 1 says uniform", i+1, d.Name())
		}
	}
}

// TestDefaultParamsMatchTable2 pins the workload defaults to Table 2
// (experiment T2).
func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.SetDepth != 3 || p.SimDepth != 3 || p.HieDepth != 5 || p.StoDepth != 50 {
		t.Errorf("depths = %d/%d/%d/%d, Table 2 says 3/3/5/50",
			p.SetDepth, p.SimDepth, p.HieDepth, p.StoDepth)
	}
	if p.ColdN != 1000 || p.HotN != 10000 {
		t.Errorf("COLDN/HOTN = %d/%d, Table 2 says 1000/10000", p.ColdN, p.HotN)
	}
	if p.Think != 0 {
		t.Errorf("THINK = %v, Table 2 says 0", p.Think)
	}
	if p.PSet != 0.25 || p.PSimple != 0.25 || p.PHier != 0.25 || p.PStoch != 0.25 {
		t.Errorf("probabilities = %v/%v/%v/%v, Table 2 says 0.25 each",
			p.PSet, p.PSimple, p.PHier, p.PStoch)
	}
	if p.Dist5.Name() != "uniform" {
		t.Errorf("RAND5 = %s, Table 2 says uniform", p.Dist5.Name())
	}
	if p.ClientN != 1 {
		t.Errorf("CLIENTN = %d, Table 2 says 1", p.ClientN)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
}

// TestCluBParamsMatchTable3 pins the genericity preset to Table 3.
func TestCluBParamsMatchTable3(t *testing.T) {
	p := CluBParams()
	if p.NC != 2 {
		t.Errorf("NC = %d, Table 3 says 2", p.NC)
	}
	if p.MaxNRef != 3 {
		t.Errorf("MAXNREF = %d, Table 3 says 3", p.MaxNRef)
	}
	if p.BaseSize != 50 {
		t.Errorf("BASESIZE = %d, Table 3 says 50", p.BaseSize)
	}
	if p.NO != 20000 {
		t.Errorf("NO = %d, Table 3 says 20000", p.NO)
	}
	if p.NRefT != 3 {
		t.Errorf("NREFT = %d, Table 3 says 3", p.NRefT)
	}
	if p.InfClass != 0 {
		t.Errorf("INFCLASS = %d, Table 3 says 0 (NIL references possible)", p.InfClass)
	}
	if !strings.HasPrefix(p.Dist1.Name(), "constant") {
		t.Errorf("DIST1 = %s, Table 3 says constant", p.Dist1.Name())
	}
	if !strings.HasPrefix(p.Dist2.Name(), "constant") {
		t.Errorf("DIST2 = %s, Table 3 says constant", p.Dist2.Name())
	}
	if !strings.HasPrefix(p.Dist4.Name(), "refzone") {
		t.Errorf("DIST4 = %s, Table 3 says the OO1 special distribution", p.Dist4.Name())
	}
	// CluB runs OO1's traversal only: depth-first, 7 hops.
	if p.PSimple != 1 || p.SimDepth != 7 {
		t.Errorf("CluB workload: PSIMPLE = %v, SIMDEPTH = %d, want 1 and 7", p.PSimple, p.SimDepth)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("CluB preset does not validate: %v", err)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	break1 := func(f func(*Params)) Params {
		p := DefaultParams()
		f(&p)
		return p
	}
	cases := map[string]Params{
		"NC":           break1(func(p *Params) { p.NC = 0 }),
		"NO":           break1(func(p *Params) { p.NO = 0 }),
		"MaxNRef":      break1(func(p *Params) { p.MaxNRef = -1 }),
		"NRefT":        break1(func(p *Params) { p.NRefT = 0 }),
		"acyclic":      break1(func(p *Params) { p.NumAcyclicTypes = 9 }),
		"classLo":      break1(func(p *Params) { p.InfClass = -1 }),
		"classHi":      break1(func(p *Params) { p.SupClass = 99 }),
		"refLo":        break1(func(p *Params) { p.InfRef = 0 }),
		"refHi":        break1(func(p *Params) { p.SupRef = p.NO + 1 }),
		"baseSize":     break1(func(p *Params) { p.BaseSize = -1 }),
		"perClassRef":  break1(func(p *Params) { p.MaxNRefPerClass = []int{1, 2} }),
		"perClassSize": break1(func(p *Params) { p.BaseSizePerClass = []int{1} }),
		"nilDist":      break1(func(p *Params) { p.Dist3 = nil }),
		"depth":        break1(func(p *Params) { p.SimDepth = -1 }),
		"counts":       break1(func(p *Params) { p.ColdN = -1 }),
		"clients":      break1(func(p *Params) { p.ClientN = 0 }),
		"think":        break1(func(p *Params) { p.Think = -time.Second }),
		"probSum":      break1(func(p *Params) { p.PSet = 0.9 }),
		"probNeg":      break1(func(p *Params) { p.PSet = -0.25; p.PSimple = 0.75 }),
		"reverse":      break1(func(p *Params) { p.PReverse = 1.5 }),
		"geometry":     break1(func(p *Params) { p.PageSize = -1 }),
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid parameters accepted", name)
		}
	}
}

func TestPerClassOverrides(t *testing.T) {
	p := DefaultParams()
	p.NC = 2
	p.SupClass = 2
	p.MaxNRefPerClass = []int{0, 3, 7}
	p.BaseSizePerClass = []int{0, 10, 90}
	if p.MaxNRefOf(1) != 3 || p.MaxNRefOf(2) != 7 {
		t.Fatalf("MaxNRefOf = %d/%d", p.MaxNRefOf(1), p.MaxNRefOf(2))
	}
	if p.BaseSizeOf(1) != 10 || p.BaseSizeOf(2) != 90 {
		t.Fatalf("BaseSizeOf = %d/%d", p.BaseSizeOf(1), p.BaseSizeOf(2))
	}
	q := DefaultParams()
	if q.MaxNRefOf(5) != 10 || q.BaseSizeOf(5) != 50 {
		t.Fatal("default per-class accessors broken")
	}
}

func TestTypePredicates(t *testing.T) {
	p := DefaultParams() // NumAcyclicTypes = 2
	if !p.isAcyclicType(1) || !p.isAcyclicType(2) || p.isAcyclicType(3) || p.isAcyclicType(0) {
		t.Fatal("isAcyclicType wrong")
	}
	if !p.isInheritanceType(1) || p.isInheritanceType(2) {
		t.Fatal("isInheritanceType wrong")
	}
	p.NumAcyclicTypes = 0
	if p.isInheritanceType(1) {
		t.Fatal("inheritance without acyclic types")
	}
}
