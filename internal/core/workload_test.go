package core

import (
	"testing"

	"ocb/internal/backend"
	"ocb/internal/cluster"
	"ocb/internal/lewis"
)

// chainParams builds a degenerate database whose fan-out is exactly
// predictable: one class, MaxNRef references all alive (no acyclic
// suppression), every object references objects of the same class.
func chainParams(maxNRef, no int) Params {
	p := DefaultParams()
	p.NC = 1
	p.SupClass = 1
	p.MaxNRef = maxNRef
	p.NRefT = 3
	p.NumAcyclicTypes = 0
	p.NO = no
	p.SupRef = no
	p.BufferPages = 16
	return p
}

func TestSimpleTraversalCountsDuplicates(t *testing.T) {
	p := chainParams(2, 100)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	res, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 1, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Full binary fan-out: 1 + 2 + 4 + 8 = 15 accesses, duplicates allowed.
	if res.ObjectsAccessed != 15 {
		t.Fatalf("accessed = %d, want 15", res.ObjectsAccessed)
	}
}

func TestOO1ShapedTraversal(t *testing.T) {
	// OO1's traversal: depth 7 over fan-out 3 touches 3280 parts
	// (with possible duplicates) — the workload CluB inherits.
	p := chainParams(3, 500)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	res, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 7, Depth: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ObjectsAccessed != 3280 {
		t.Fatalf("accessed = %d, want 3280 (OO1 shape)", res.ObjectsAccessed)
	}
}

func TestSetAccessDeduplicates(t *testing.T) {
	p := chainParams(2, 100)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	set, err := ex.Exec(Transaction{Type: SetAccess, Root: 1, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 1, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.ObjectsAccessed > sim.ObjectsAccessed {
		t.Fatalf("set access (%d) exceeded duplicate-counting traversal (%d)",
			set.ObjectsAccessed, sim.ObjectsAccessed)
	}
	if set.ObjectsAccessed < 1 {
		t.Fatal("set access touched nothing")
	}
	// With a 100-object database, depth-3 fan-out must revisit something:
	// strictly fewer unique objects than raw visits.
	if set.ObjectsAccessed == sim.ObjectsAccessed {
		t.Logf("warning: no duplicates at this seed (set=%d)", set.ObjectsAccessed)
	}
}

func TestHierarchyFollowsOneType(t *testing.T) {
	p := chainParams(4, 200)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))

	class := db.Schema.Class(1)
	// Count the class's references of type 1: hierarchy fan-out per hop.
	fanout := 0
	for _, tr := range class.TRef {
		if tr == 1 {
			fanout++
		}
	}
	res, err := ex.Exec(Transaction{Type: HierarchyTraversal, Root: 1, Depth: 2, RefType: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + fanout + fanout*fanout
	if res.ObjectsAccessed != want {
		t.Fatalf("accessed = %d, want %d (fan-out %d)", res.ObjectsAccessed, want, fanout)
	}
}

func TestStochasticWalkLength(t *testing.T) {
	p := chainParams(3, 200)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(5))
	res, err := ex.Exec(Transaction{Type: StochasticTraversal, Root: 1, Depth: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Every object has 3 live references, so the walk never stalls.
	if res.ObjectsAccessed != 51 {
		t.Fatalf("accessed = %d, want 51 (root + 50 steps)", res.ObjectsAccessed)
	}
}

func TestStochasticPrefersFirstReference(t *testing.T) {
	p := chainParams(3, 500)
	db := MustGenerate(p)
	// Count how often each reference slot is chosen by instrumenting with
	// a policy that records crossings.
	rec := &recordingPolicy{}
	ex := NewExecutor(db, rec, lewis.New(11))
	for root := 1; root <= 100; root++ {
		if _, err := ex.Exec(Transaction{Type: StochasticTraversal, Root: backend.OID(root), Depth: 20}); err != nil {
			t.Fatal(err)
		}
	}
	firstRef, otherRef := 0, 0
	for _, cr := range rec.crossings {
		obj := db.Object(cr.src)
		if obj.ORef[0] == cr.dst {
			firstRef++
		} else {
			otherRef++
		}
	}
	// p(1) = 1/2 of draws, plus collisions when other slots point at the
	// same target. It must clearly dominate any single other slot.
	if firstRef <= otherRef/2+otherRef/4 {
		t.Fatalf("first reference not preferred: first=%d others=%d", firstRef, otherRef)
	}
}

func TestReverseTraversalUsesBackRefs(t *testing.T) {
	p := chainParams(2, 100)
	db := MustGenerate(p)
	// Find an object with backrefs but give it no forward refs by picking
	// any object and comparing forward vs reverse from the same root.
	var root backend.OID
	for i := 1; i <= p.NO; i++ {
		if len(db.Objects[i].BackRef) > 0 {
			root = backend.OID(i)
			break
		}
	}
	if root == backend.NilOID {
		t.Fatal("no object with backrefs")
	}
	rec := &recordingPolicy{}
	ex := NewExecutor(db, rec, lewis.New(1))
	res, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: root, Depth: 1, Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(db.Object(root).BackRef)
	if res.ObjectsAccessed != want {
		t.Fatalf("reverse accessed %d, want %d", res.ObjectsAccessed, want)
	}
	// Every crossing must be a real backward link: dst references src.
	for _, cr := range rec.crossings {
		found := false
		for _, r := range db.Object(cr.dst).ORef {
			if r == cr.src {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reverse crossing %d->%d is not a backward link", cr.src, cr.dst)
		}
	}
}

func TestReverseHierarchyTypeFilter(t *testing.T) {
	p := chainParams(4, 200)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	// Forward hierarchy crossings of type 2 from every object must mirror
	// reverse hierarchy crossings of type 2 into that object.
	fwd, err := ex.Exec(Transaction{Type: HierarchyTraversal, Root: 10, Depth: 1, RefType: 2})
	if err != nil {
		t.Fatal(err)
	}
	obj := db.Object(10)
	class := db.Schema.Class(obj.Class)
	wantFwd := 1
	for k, tr := range class.TRef {
		if tr == 2 && obj.ORef[k] != backend.NilOID {
			wantFwd++
		}
	}
	if fwd.ObjectsAccessed != wantFwd {
		t.Fatalf("forward typed fan-out = %d, want %d", fwd.ObjectsAccessed, wantFwd)
	}
	rev, err := ex.Exec(Transaction{Type: HierarchyTraversal, Root: 10, Depth: 1, RefType: 2, Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRev := 1
	for _, from := range obj.BackRef {
		fobj := db.Object(from)
		fclass := db.Schema.Class(fobj.Class)
		for k, r := range fobj.ORef {
			if r == obj.OID && fclass.TRef[k] == 2 {
				wantRev++
				break
			}
		}
	}
	if rev.ObjectsAccessed != wantRev {
		t.Fatalf("reverse typed fan-in = %d, want %d", rev.ObjectsAccessed, wantRev)
	}
}

func TestExecErrors(t *testing.T) {
	p := chainParams(2, 50)
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	if _, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 9999, Depth: 1}); err == nil {
		t.Fatal("bad root accepted")
	}
	if _, err := ex.Exec(Transaction{Type: TxType(42), Root: 1}); err == nil {
		t.Fatal("unknown type accepted")
	}
	for _, typ := range []TxType{SetAccess, HierarchyTraversal, StochasticTraversal} {
		if _, err := ex.Exec(Transaction{Type: typ, Root: 9999, Depth: 1, RefType: 1}); err == nil {
			t.Fatalf("%v accepted bad root", typ)
		}
	}
}

func TestExecCountsIOs(t *testing.T) {
	p := chainParams(3, 2000)
	p.BufferPages = 4 // heavy pressure so traversals must fault
	db := MustGenerate(p)
	db.Store.DropCache()
	ex := NewExecutor(db, nil, lewis.New(1))
	res, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 1, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOs == 0 {
		t.Fatal("traversal under memory pressure performed no I/O")
	}
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestPolicyObservation(t *testing.T) {
	p := chainParams(2, 100)
	db := MustGenerate(p)
	rec := &recordingPolicy{}
	ex := NewExecutor(db, rec, lewis.New(1))
	res, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.roots) != 1 || rec.roots[0] != 5 {
		t.Fatalf("roots = %v", rec.roots)
	}
	// Every non-root access is one observed crossing.
	if len(rec.crossings) != res.ObjectsAccessed-1 {
		t.Fatalf("crossings = %d, accesses = %d", len(rec.crossings), res.ObjectsAccessed)
	}
	if rec.endTx != 1 {
		t.Fatalf("EndTransaction called %d times", rec.endTx)
	}
}

func TestTxTypeString(t *testing.T) {
	names := map[TxType]string{
		SetAccess: "set", SimpleTraversal: "simple",
		HierarchyTraversal: "hierarchy", StochasticTraversal: "stochastic",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q", typ, typ.String())
		}
	}
	if TxType(9).String() == "" {
		t.Fatal("unknown type empty")
	}
}

// recordingPolicy captures observation callbacks for assertions.
type recordingPolicy struct {
	crossings []struct{ src, dst backend.OID }
	roots     []backend.OID
	endTx     int
}

func (r *recordingPolicy) Name() string { return "recording" }
func (r *recordingPolicy) ObserveLink(src, dst backend.OID) {
	r.crossings = append(r.crossings, struct{ src, dst backend.OID }{src, dst})
}
func (r *recordingPolicy) ObserveRoot(root backend.OID) { r.roots = append(r.roots, root) }
func (r *recordingPolicy) EndTransaction()              { r.endTx++ }
func (r *recordingPolicy) Reorganize(backend.Backend) (backend.RelocStats, error) {
	return backend.RelocStats{}, nil
}
func (r *recordingPolicy) Reset() { *r = recordingPolicy{} }

var _ cluster.Policy = (*recordingPolicy)(nil)
