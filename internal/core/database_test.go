package core

import (
	"testing"
	"testing/quick"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

func TestGenerateSmallDatabase(t *testing.T) {
	p := smallParams()
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
	if db.NO() != p.NO {
		t.Fatalf("NO = %d", db.NO())
	}
	if db.GenTime <= 0 {
		t.Fatal("generation time not recorded")
	}
	// Generation must leave clean counters for the workload.
	if db.Store.Stats().Disk.Total() != 0 {
		t.Fatal("generation left dirty I/O counters")
	}
	// Iterators partition the objects.
	sum := 0
	for i := 1; i <= p.NC; i++ {
		sum += len(db.Schema.Class(i).Iterator)
	}
	if sum != p.NO {
		t.Fatalf("iterators cover %d objects, want %d", sum, p.NO)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallParams()
	a := MustGenerate(p)
	b := MustGenerate(p)
	for i := 1; i <= p.NO; i++ {
		oa, ob := a.Objects[i], b.Objects[i]
		if oa.Class != ob.Class {
			t.Fatalf("object %d class differs", i)
		}
		for k := range oa.ORef {
			if oa.ORef[k] != ob.ORef[k] {
				t.Fatalf("object %d ref %d differs: %d vs %d", i, k, oa.ORef[k], ob.ORef[k])
			}
		}
	}
	// Placement must also be identical.
	for i := 1; i <= p.NO; i++ {
		pa, _ := a.Store.(backend.Placer).PageOf(backend.OID(i))
		pb, _ := b.Store.(backend.Placer).PageOf(backend.OID(i))
		if pa != pb {
			t.Fatalf("object %d placed differently: %d vs %d", i, pa, pb)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := smallParams()
	a := MustGenerate(p)
	p.Seed = p.Seed + 1
	b := MustGenerate(p)
	same := 0
	for i := 1; i <= p.NO; i++ {
		if a.Objects[i].Class == b.Objects[i].Class {
			same++
		}
	}
	if same == p.NO {
		t.Fatal("different seeds produced identical class assignment")
	}
}

// TestDatabaseInvariantsProperty regenerates databases under random seeds
// and checks the full CheckDatabase invariant set (reference classes match
// the schema, BackRef symmetry, store consistency).
func TestDatabaseInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := smallParams()
		p.NO = 200
		p.SupRef = 200
		p.Seed = seed
		db, err := Generate(p)
		if err != nil {
			return false
		}
		return CheckDatabase(db) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCluBDatabaseGenerates(t *testing.T) {
	p := CluBParams()
	p.NO = 1000 // keep the unit test fast; Table 4 uses the full size
	p.SupRef = 1000
	p.Dist4 = lewis.RefZone{Zone: 10, PLocal: 0.9}
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
	// RoundRobin DIST3 splits objects evenly between the two classes.
	n1 := len(db.Schema.Class(1).Iterator)
	n2 := len(db.Schema.Class(2).Iterator)
	if n1 != n2 {
		t.Fatalf("round-robin class split uneven: %d vs %d", n1, n2)
	}
	// All references target class 1 (parts), per Table 3's constant DIST2.
	for i := 1; i <= p.NO; i++ {
		obj := db.Objects[i]
		for _, r := range obj.ORef {
			if r == backend.NilOID {
				continue
			}
			if c, _ := db.ClassOf(r); c != 1 {
				t.Fatalf("reference targets class %d, want 1", c)
			}
		}
	}
}

// TestRefZoneLocalityInDatabase verifies OO1-style locality end to end:
// with DIST4 = refzone, the bulk of references land near the referencing
// object's scaled position in the target iterator.
func TestRefZoneLocalityInDatabase(t *testing.T) {
	p := smallParams()
	p.NC = 1
	p.SupClass = 1
	p.NO = 2000
	p.SupRef = 2000
	p.NumAcyclicTypes = 0 // keep every reference alive (self-class loops)
	p.Dist4 = lewis.RefZone{Zone: 20, PLocal: 0.9}
	db := MustGenerate(p)
	local, total := 0, 0
	for i := 1; i <= p.NO; i++ {
		for _, r := range db.Objects[i].ORef {
			if r == backend.NilOID {
				continue
			}
			total++
			d := int(r) - i
			if d < 0 {
				d = -d
			}
			if d <= 20 {
				local++
			}
		}
	}
	if total == 0 {
		t.Fatal("no references generated")
	}
	frac := float64(local) / float64(total)
	if frac < 0.85 {
		t.Fatalf("local fraction = %v, want ~0.9", frac)
	}
}

func TestObjectAccessors(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	if db.Object(backend.NilOID) != nil {
		t.Fatal("NilOID returned an object")
	}
	if db.Object(backend.OID(p.NO+5)) != nil {
		t.Fatal("out-of-range OID returned an object")
	}
	if c, ok := db.ClassOf(1); !ok || c < 1 || c > p.NC {
		t.Fatalf("ClassOf(1) = %d, %v", c, ok)
	}
	if _, ok := db.ClassOf(backend.OID(p.NO + 5)); ok {
		t.Fatal("ClassOf accepted bad OID")
	}
	oids := db.AllOIDs()
	if len(oids) != p.NO || oids[0] != 1 || oids[len(oids)-1] != backend.OID(p.NO) {
		t.Fatalf("AllOIDs wrong: len=%d", len(oids))
	}
}

func TestGenerateRejectsInvalidParams(t *testing.T) {
	p := smallParams()
	p.NC = 0
	if _, err := Generate(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestGenerateLargeInstances(t *testing.T) {
	// Deep inheritance over many classes can push InstanceSize past one
	// page (the paper's 50-class schemas do); the store then spans the
	// instance over a dedicated page run, as Texas does.
	p := smallParams()
	p.NO = 50
	p.SupRef = 50
	p.BaseSize = 6000 // exceeds the 4096-byte page by itself
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
	pages, ok := db.Store.(backend.Placer).PagesOf(1)
	if !ok || len(pages) < 2 {
		t.Fatalf("large instance not spanning pages: %v, %v", pages, ok)
	}
}

func TestCheckDatabaseCatchesCorruption(t *testing.T) {
	p := smallParams()
	p.NO = 100
	p.SupRef = 100

	db := MustGenerate(p)
	// Find an object with at least one non-NIL reference and corrupt it.
	var victim *Object
	for i := 1; i <= p.NO && victim == nil; i++ {
		for _, r := range db.Objects[i].ORef {
			if r != backend.NilOID {
				victim = db.Objects[i]
				break
			}
		}
	}
	if victim == nil {
		t.Skip("no references in this configuration")
	}
	for k, r := range victim.ORef {
		if r != backend.NilOID {
			victim.ORef[k] = backend.NilOID
			break
		}
	}
	if err := CheckDatabase(db); err == nil {
		t.Fatal("broken BackRef symmetry accepted")
	}
}

func TestScaleIndex(t *testing.T) {
	if scaleIndex(1, 100, 10) != 1 {
		t.Fatal("lower end wrong")
	}
	if scaleIndex(100, 100, 10) != 10 {
		t.Fatal("upper end wrong")
	}
	if scaleIndex(50, 100, 10) < 4 || scaleIndex(50, 100, 10) > 6 {
		t.Fatalf("midpoint = %d", scaleIndex(50, 100, 10))
	}
	if scaleIndex(5, 1, 10) != 1 || scaleIndex(5, 10, 1) != 1 {
		t.Fatal("degenerate ranges wrong")
	}
}

// TestDatabaseCloseIdempotent pins the stacked-shutdown contract: command
// paths routinely defer db.Close alongside a backend-level Shutdown over
// the same store, so a repeated Close must be a clean no-op — including
// on a durable backend that really closes files.
func TestDatabaseCloseIdempotent(t *testing.T) {
	p := smallParams()
	p.Backend = "waldisk"
	p.BackendOptions = map[string]string{"dir": t.TempDir()}
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
}
