package core

import (
	"fmt"
	"sort"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// This file implements the paper's Section 5 extension: "OCB could be
// easily enhanced to become a fully generic object-oriented benchmark ...
// by extending the transaction set so that it includes a broader range of
// operations (namely operations we discarded in the first place because
// they couldn't benefit from clustering)". The discarded operations the
// paper names are creation and update operations, HyperModel's Range
// Lookup and Sequential Scan; all are provided here, plus deletion so the
// object base can reach a steady state under churn.
//
// The database tracks its live objects so workloads with insertions and
// deletions keep drawing valid victims/roots.

// initLive seeds the live-object tracking after generation.
func (db *Database) initLive() {
	db.live = make([]backend.OID, 0, db.NO())
	db.liveIdx = make(map[backend.OID]int, db.NO())
	for i := 1; i < len(db.Objects); i++ {
		if db.Objects[i] != nil {
			db.liveIdx[db.Objects[i].OID] = len(db.live)
			db.live = append(db.live, db.Objects[i].OID)
		}
	}
	db.snapMu.Lock()
	db.liveSnap = append([]backend.OID(nil), db.live...)
	db.liveSnapOK.Store(true)
	db.snapMu.Unlock()
}

// NumLive returns the number of live objects (inserts minus deletes).
func (db *Database) NumLive() int { return len(db.live) }

// LiveOIDs returns the live objects in ascending OID order. The returned
// slice is a shared snapshot maintained incrementally across insertions and
// rebuilt lazily after deletions: callers must treat it as read-only, and
// it is only guaranteed current until the next structural mutation. Scan
// transactions and ResolveLive ride this snapshot so they no longer rebuild
// an O(n) slice per call; callers that want to reorder the result should
// use AllOIDs instead.
func (db *Database) LiveOIDs() []backend.OID {
	if db.liveSnapOK.Load() {
		return db.liveSnap
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if !db.liveSnapOK.Load() {
		// Rebuild into a fresh slice: snapshots handed out earlier stay
		// intact for their holders.
		snap := make([]backend.OID, 0, len(db.live))
		for i := 1; i < len(db.Objects); i++ {
			if db.Objects[i] != nil {
				snap = append(snap, db.Objects[i].OID)
			}
		}
		db.liveSnap = snap
		db.liveSnapOK.Store(true)
	}
	return db.liveSnap
}

// ResolveLive maps an arbitrary OID onto a live object: itself when live,
// otherwise the next live OID upward (wrapping). It lets transaction roots
// drawn from the static [1, NO] interval stay valid under deletion. The
// lookup binary-searches the ascending live snapshot.
func (db *Database) ResolveLive(oid backend.OID) (backend.OID, bool) {
	live := db.LiveOIDs()
	if len(live) == 0 {
		return backend.NilOID, false
	}
	i := sort.Search(len(live), func(i int) bool { return live[i] >= oid })
	if i == len(live) {
		i = 0 // wrap past the highest live OID
	}
	return live[i], true
}

// trackInsert registers a new live object. Callers hold the database's
// exclusive lock. OIDs are issued in increasing order, so the ascending
// snapshot extends in place without losing sortedness.
func (db *Database) trackInsert(oid backend.OID) {
	if db.liveIdx == nil {
		db.initLive()
		return
	}
	db.liveIdx[oid] = len(db.live)
	db.live = append(db.live, oid)
	db.snapMu.Lock()
	if db.liveSnapOK.Load() {
		db.liveSnap = append(db.liveSnap, oid)
	}
	db.snapMu.Unlock()
}

// trackDelete unregisters a live object (swap-remove) and invalidates the
// ascending snapshot; the next LiveOIDs call rebuilds it.
func (db *Database) trackDelete(oid backend.OID) {
	i, ok := db.liveIdx[oid]
	if !ok {
		return
	}
	last := len(db.live) - 1
	db.live[i] = db.live[last]
	db.liveIdx[db.live[i]] = i
	db.live = db.live[:last]
	delete(db.liveIdx, oid)
	db.liveSnapOK.Store(false)
}

// InsertObject creates one new object following the generation rules: its
// class is drawn via DIST3, its references via DIST4 within the reference
// interval of each target class's iterator, and BackRefs are maintained.
// The new object is placed in creation order (at the end of the heap, as
// Texas allocates) and the change is committed.
func (db *Database) InsertObject(src *lewis.Source) (*Object, error) {
	p := db.P
	classID := p.Dist3.Draw(src, 1, p.NC, len(db.Objects))
	class := db.Schema.Class(classID)
	if class == nil {
		return nil, fmt.Errorf("ocb: insert drew class %d", classID)
	}
	oid, err := db.Store.Create(class.DiskSize())
	if err != nil {
		return nil, err
	}
	if int(oid) != len(db.Objects) {
		return nil, fmt.Errorf("ocb: insert got OID %d, want %d", oid, len(db.Objects))
	}
	obj := &Object{OID: oid, Class: classID, ORef: make([]backend.OID, class.MaxNRef)}
	db.Objects = append(db.Objects, obj)
	class.Iterator = append(class.Iterator, oid)
	db.trackInsert(oid)

	for k := 0; k < class.MaxNRef; k++ {
		targetClass := db.Schema.Class(class.CRef[k])
		if targetClass == nil || len(targetClass.Iterator) == 0 {
			obj.ORef[k] = backend.NilOID
			continue
		}
		count := len(targetClass.Iterator)
		lo := clampInt(p.InfRef, 1, count)
		hi := clampInt(p.SupRef, 1, count)
		center := scaleIndex(int(oid), len(db.Objects)-1, count)
		l := p.Dist4.Draw(src, lo, hi, center)
		target := targetClass.Iterator[l-1]
		obj.ORef[k] = target
		db.Objects[target].BackRef = append(db.Objects[target].BackRef, oid)
	}
	return obj, db.Store.Commit()
}

// DeleteObject removes an object and repairs the graph: referrers' ORef
// slots become NIL, targets lose the matching BackRef entries, the class
// iterator shrinks, and the store page is updated. The change is
// committed.
func (db *Database) DeleteObject(oid backend.OID) error {
	obj := db.Object(oid)
	if obj == nil {
		return fmt.Errorf("%w: %d", backend.ErrNoSuchObject, oid)
	}
	// Forward references: drop this object from each target's BackRef.
	for _, target := range obj.ORef {
		if target == backend.NilOID {
			continue
		}
		tobj := db.Object(target)
		if tobj == nil {
			continue
		}
		for i, b := range tobj.BackRef {
			if b == oid {
				tobj.BackRef = append(tobj.BackRef[:i], tobj.BackRef[i+1:]...)
				break
			}
		}
	}
	// Backward references: NIL out one matching slot per referring entry.
	for _, from := range obj.BackRef {
		fobj := db.Object(from)
		if fobj == nil {
			continue
		}
		for k, r := range fobj.ORef {
			if r == oid {
				fobj.ORef[k] = backend.NilOID
				break
			}
		}
		if err := db.Store.Update(from); err != nil {
			return err
		}
	}
	// Class iterator.
	class := db.Schema.Class(obj.Class)
	for i, it := range class.Iterator {
		if it == oid {
			class.Iterator = append(class.Iterator[:i], class.Iterator[i+1:]...)
			break
		}
	}
	if err := db.Store.Delete(oid); err != nil {
		return err
	}
	db.Objects[oid] = nil
	db.trackDelete(oid)
	return db.Store.Commit()
}

// GenericParams returns the Section 5 "fully generic" parameterization:
// the four clustering-oriented transaction types plus the operations the
// paper initially discarded (update, insertion, deletion, sequential scan
// and range lookup), with a balanced mix.
func GenericParams() Params {
	p := DefaultParams()
	p.PSet, p.PSimple, p.PHier, p.PStoch = 0.15, 0.15, 0.15, 0.15
	p.PUpdate, p.PInsert, p.PDelete = 0.15, 0.10, 0.05
	p.PScan, p.PRange = 0.02, 0.08
	return p
}
