package core

// The test binary opens backends by name; link the driver bundle, as the
// commands do.
import (
	_ "ocb/internal/backend/all"
	"ocb/internal/disk"
)

// storeDisk reaches the fault-injection hook of the paged backend's disk.
// Tests that inject failures are inherently paged-store tests, so a
// failing capability assertion is a test bug, not a skip.
func storeDisk(db *Database) *disk.Disk {
	d, ok := db.Store.(interface{ Disk() *disk.Disk })
	if !ok {
		panic("test database is not on a disk-backed store")
	}
	return d.Disk()
}
