package core

import (
	"testing"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

func genericSmall() Params {
	p := GenericParams()
	p.NO = 400
	p.SupRef = 400
	p.NC = 5
	p.SupClass = 5
	p.BufferPages = 16
	p.ColdN = 30
	p.HotN = 60
	return p
}

func TestGenericParamsValidate(t *testing.T) {
	p := GenericParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := p.PSet + p.PSimple + p.PHier + p.PStoch +
		p.PUpdate + p.PInsert + p.PDelete + p.PScan + p.PRange
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestInsertObjectMaintainsInvariants(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	src := lewis.New(99)
	before := db.NumLive()
	obj, err := db.InsertObject(src)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumLive() != before+1 {
		t.Fatalf("live = %d, want %d", db.NumLive(), before+1)
	}
	if obj.OID != backend.OID(p.NO+1) {
		t.Fatalf("new OID = %d", obj.OID)
	}
	if obj.Class < 1 || obj.Class > p.NC {
		t.Fatalf("new class = %d", obj.Class)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteObjectRepairsGraph(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	// Pick a victim with both in- and out-links.
	var victim backend.OID
	for i := 1; i <= p.NO; i++ {
		obj := db.Objects[i]
		if len(obj.BackRef) > 0 {
			for _, r := range obj.ORef {
				if r != backend.NilOID {
					victim = obj.OID
					break
				}
			}
		}
		if victim != backend.NilOID {
			break
		}
	}
	if victim == backend.NilOID {
		t.Skip("no suitable victim")
	}
	referrers := append([]backend.OID(nil), db.Object(victim).BackRef...)
	if err := db.DeleteObject(victim); err != nil {
		t.Fatal(err)
	}
	if db.Object(victim) != nil {
		t.Fatal("victim still reachable")
	}
	if db.Store.Exists(victim) {
		t.Fatal("victim still stored")
	}
	// No referrer may still point at the victim.
	for _, from := range referrers {
		fobj := db.Object(from)
		if fobj == nil {
			continue
		}
		for _, r := range fobj.ORef {
			if r == victim {
				t.Fatalf("object %d still references deleted %d", from, victim)
			}
		}
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Double delete fails cleanly.
	if err := db.DeleteObject(victim); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestResolveLive(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	if got, ok := db.ResolveLive(5); !ok || got != 5 {
		t.Fatalf("live OID resolved to %d, %v", got, ok)
	}
	if err := db.DeleteObject(5); err != nil {
		t.Fatal(err)
	}
	got, ok := db.ResolveLive(5)
	if !ok || got == 5 || db.Object(got) == nil {
		t.Fatalf("deleted OID resolved to %d, %v", got, ok)
	}
	// Out-of-range input still resolves somewhere live.
	if got, ok := db.ResolveLive(backend.OID(p.NO + 500)); !ok || db.Object(got) == nil {
		t.Fatalf("out-of-range resolved to %d, %v", got, ok)
	}
}

func TestGenericOperationsViaExecutor(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(7))

	up, err := ex.Exec(Transaction{Type: UpdateOp, Root: 3})
	if err != nil {
		t.Fatal(err)
	}
	if up.ObjectsAccessed != 1 {
		t.Fatalf("update touched %d", up.ObjectsAccessed)
	}

	ins, err := ex.Exec(Transaction{Type: InsertOp})
	if err != nil {
		t.Fatal(err)
	}
	if ins.ObjectsAccessed < 1 {
		t.Fatal("insert touched nothing")
	}

	del, err := ex.Exec(Transaction{Type: DeleteOp, Root: 10})
	if err != nil {
		t.Fatal(err)
	}
	if del.ObjectsAccessed < 1 {
		t.Fatal("delete touched nothing")
	}

	scan, err := ex.Exec(Transaction{Type: ScanOp})
	if err != nil {
		t.Fatal(err)
	}
	if scan.ObjectsAccessed != db.NumLive() {
		t.Fatalf("scan touched %d, live = %d", scan.ObjectsAccessed, db.NumLive())
	}

	rng, err := ex.Exec(Transaction{Type: RangeOp, Root: 50})
	if err != nil {
		t.Fatal(err)
	}
	width := p.NO / 100
	if width < 1 {
		width = 1
	}
	if rng.ObjectsAccessed < 1 || rng.ObjectsAccessed > width {
		t.Fatalf("range touched %d, want 1..%d", rng.ObjectsAccessed, width)
	}

	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
}

func TestGenericWorkloadEndToEnd(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm.Transactions != int64(p.HotN) {
		t.Fatalf("warm tx = %d", res.Warm.Transactions)
	}
	// Every one of the nine types must have occurred across the run.
	for typ := TxType(0); typ < NumTxTypes; typ++ {
		if res.Cold.PerType[typ].Count+res.Warm.PerType[typ].Count == 0 {
			t.Fatalf("type %v never sampled", typ)
		}
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
}

func TestGenericWorkloadDeterministic(t *testing.T) {
	run := func() (int, int) {
		p := genericSmall()
		db := MustGenerate(p)
		r := NewRunner(db, nil)
		if _, err := r.RunPhase("gen", 80, 11); err != nil {
			t.Fatal(err)
		}
		return db.NumLive(), len(db.Objects)
	}
	l1, o1 := run()
	l2, o2 := run()
	if l1 != l2 || o1 != o2 {
		t.Fatalf("nondeterministic mutation: %d/%d vs %d/%d", l1, o1, l2, o2)
	}
}

func TestGenericWorkloadWithDSTC(t *testing.T) {
	// Clustering policies must survive a mutating workload (stale
	// statistics for deleted objects are dropped at unit construction).
	p := genericSmall()
	db := MustGenerate(p)
	rec := &recordingPolicy{}
	r := NewRunner(db, rec)
	if _, err := r.RunPhase("observe", 60, 3); err != nil {
		t.Fatal(err)
	}
	if rec.endTx != 60 {
		t.Fatalf("transactions observed = %d", rec.endTx)
	}
}

func TestUpdateCommitsWrites(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	db.Store.DropCache()
	db.Store.ResetStats()
	ex := NewExecutor(db, nil, lewis.New(1))
	if _, err := ex.Exec(Transaction{Type: UpdateOp, Root: 1}); err != nil {
		t.Fatal(err)
	}
	if w := db.Store.Stats().Disk.TotalWrites(); w == 0 {
		t.Fatal("update committed no writes")
	}
}

func TestScanAfterChurnMatchesLiveSet(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	src := lewis.New(21)
	for i := 0; i < 10; i++ {
		if _, err := db.InsertObject(src); err != nil {
			t.Fatal(err)
		}
	}
	for oid := backend.OID(20); oid < 40; oid += 2 {
		if err := db.DeleteObject(oid); err != nil {
			t.Fatal(err)
		}
	}
	want := p.NO + 10 - 10
	if db.NumLive() != want {
		t.Fatalf("live = %d, want %d", db.NumLive(), want)
	}
	ex := NewExecutor(db, nil, src)
	scan, err := ex.Exec(Transaction{Type: ScanOp})
	if err != nil {
		t.Fatal(err)
	}
	if scan.ObjectsAccessed != want {
		t.Fatalf("scan = %d, want %d", scan.ObjectsAccessed, want)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
}
