package core

import (
	"testing"

	"ocb/internal/cluster"
	"ocb/internal/dstc"
	"ocb/internal/lewis"
)

func TestRunnerFullProtocol(t *testing.T) {
	p := smallParams()
	p.ColdN = 30
	p.HotN = 60
	db := MustGenerate(p)
	r := NewRunner(db, cluster.None{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold.Transactions != int64(p.ColdN) {
		t.Fatalf("cold transactions = %d, want %d", res.Cold.Transactions, p.ColdN)
	}
	if res.Warm.Transactions != int64(p.HotN) {
		t.Fatalf("warm transactions = %d, want %d", res.Warm.Transactions, p.HotN)
	}
	if res.PolicyName != "none" {
		t.Fatalf("policy name = %q", res.PolicyName)
	}
	// Per-type counts must sum to the phase total.
	var sum int64
	for _, tm := range res.Warm.PerType {
		sum += tm.Count
	}
	if sum != res.Warm.Transactions {
		t.Fatalf("per-type counts sum to %d, want %d", sum, res.Warm.Transactions)
	}
	if res.Warm.Global.Objects.Mean() <= 1 {
		t.Fatalf("mean objects per tx = %v", res.Warm.Global.Objects.Mean())
	}
	if res.Warm.Duration <= 0 {
		t.Fatal("phase duration missing")
	}
}

func TestRunPhaseDeterministicStreams(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	a, err := r.RunPhase("x", 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunPhase("y", 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	for typ := range a.PerType {
		if a.PerType[typ].Count != b.PerType[typ].Count {
			t.Fatalf("type %v count differs: %d vs %d",
				TxType(typ), a.PerType[typ].Count, b.PerType[typ].Count)
		}
		if a.PerType[typ].Objects.Sum() != b.PerType[typ].Objects.Sum() {
			t.Fatalf("type %v objects differ", TxType(typ))
		}
	}
}

func TestTypeMixFollowsProbabilities(t *testing.T) {
	p := smallParams()
	p.PSet, p.PSimple, p.PHier, p.PStoch = 0.5, 0.5, 0, 0
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	m, err := r.RunPhase("mix", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerType[HierarchyTraversal].Count != 0 || m.PerType[StochasticTraversal].Count != 0 {
		t.Fatal("zero-probability types executed")
	}
	frac := float64(m.PerType[SetAccess].Count) / float64(m.Transactions)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("set fraction = %v, want ~0.5", frac)
	}
}

func TestSingleTypeWorkload(t *testing.T) {
	p := smallParams()
	p.PSet, p.PSimple, p.PHier, p.PStoch = 0, 1, 0, 0
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	m, err := r.RunPhase("simple-only", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerType[SimpleTraversal].Count != 50 {
		t.Fatalf("simple count = %d", m.PerType[SimpleTraversal].Count)
	}
}

func TestMultiClientRun(t *testing.T) {
	p := smallParams()
	p.ClientN = 4
	p.ColdN = 10
	p.HotN = 20
	db := MustGenerate(p)
	r := NewRunner(db, dstc.New(dstc.Params{ObservationPeriod: 5}))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold.Transactions != int64(4*p.ColdN) {
		t.Fatalf("cold transactions = %d, want %d", res.Cold.Transactions, 4*p.ColdN)
	}
	if res.Warm.Transactions != int64(4*p.HotN) {
		t.Fatalf("warm transactions = %d, want %d", res.Warm.Transactions, 4*p.HotN)
	}
}

func TestMeanIOsPerTxUsesGlobalCounters(t *testing.T) {
	p := smallParams()
	p.BufferPages = 4 // pressure
	db := MustGenerate(p)
	db.Store.DropCache()
	r := NewRunner(db, nil)
	m, err := r.RunPhase("pressure", 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanIOsPerTx() <= 0 {
		t.Fatal("no I/Os measured under memory pressure")
	}
	// Global mean from disk counters must agree with the per-tx attribution
	// in the single-client case (up to accumulation rounding).
	got, want := m.MeanIOsPerTx(), m.Global.IOs.Mean()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("global mean %v != per-tx mean %v (single client)", got, want)
	}
	var empty PhaseMetrics
	if empty.MeanIOsPerTx() != 0 {
		t.Fatal("empty phase mean not 0")
	}
}

func TestSampleTransactionShape(t *testing.T) {
	p := DefaultParams()
	src := lewis.New(123)
	counts := make(map[TxType]int)
	for i := 0; i < 4000; i++ {
		tx := SampleTransaction(p, src)
		counts[tx.Type]++
		if tx.Root < 1 || int(tx.Root) > p.NO {
			t.Fatalf("root %d out of range", tx.Root)
		}
		switch tx.Type {
		case SetAccess:
			if tx.Depth != p.SetDepth {
				t.Fatalf("set depth = %d", tx.Depth)
			}
		case SimpleTraversal:
			if tx.Depth != p.SimDepth {
				t.Fatalf("simple depth = %d", tx.Depth)
			}
		case HierarchyTraversal:
			if tx.Depth != p.HieDepth {
				t.Fatalf("hierarchy depth = %d", tx.Depth)
			}
			if tx.RefType < 1 || tx.RefType > p.NRefT {
				t.Fatalf("hierarchy ref type = %d", tx.RefType)
			}
		case StochasticTraversal:
			if tx.Depth != p.StoDepth {
				t.Fatalf("stochastic depth = %d", tx.Depth)
			}
		}
		if tx.Reverse {
			t.Fatal("reverse transaction with PReverse = 0")
		}
	}
	for _, typ := range []TxType{SetAccess, SimpleTraversal, HierarchyTraversal, StochasticTraversal} {
		frac := float64(counts[typ]) / 4000
		if frac < 0.2 || frac > 0.3 {
			t.Fatalf("type %v fraction = %v, want ~0.25", typ, frac)
		}
	}
	// The generic transaction set has probability 0 under Table 2 defaults.
	for _, typ := range []TxType{UpdateOp, InsertOp, DeleteOp, ScanOp, RangeOp} {
		if counts[typ] != 0 {
			t.Fatalf("type %v sampled under default probabilities", typ)
		}
	}
}

func TestSampleTransactionReverse(t *testing.T) {
	p := DefaultParams()
	p.PReverse = 1
	src := lewis.New(5)
	for i := 0; i < 20; i++ {
		if !SampleTransaction(p, src).Reverse {
			t.Fatal("PReverse=1 produced forward transaction")
		}
	}
}

// TestDSTCGainEndToEnd is the miniature Table 5 mechanic: observe a
// workload, reorganize with DSTC, replay the identical workload, and
// require fewer I/Os. This is the core claim of the whole benchmark.
func TestDSTCGainEndToEnd(t *testing.T) {
	p := smallParams()
	p.NO = 2000
	p.SupRef = 2000
	p.BufferPages = 16
	p.PSet, p.PSimple, p.PHier, p.PStoch = 0, 1, 0, 0
	db := MustGenerate(p)

	policy := dstc.New(dstc.Params{ObservationPeriod: 50, Tfa: 1, Tfc: 1})
	r := NewRunner(db, policy)

	const seed = 99
	db.Store.DropCache()
	before, err := r.RunPhase("before", 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reorganize(); err != nil {
		t.Fatal(err)
	}
	db.Store.DropCache()
	after, err := r.RunPhase("after", 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	gain := before.MeanIOsPerTx() / after.MeanIOsPerTx()
	if gain <= 1 {
		t.Fatalf("DSTC did not help: %.2f -> %.2f I/Os per tx (gain %.2f)",
			before.MeanIOsPerTx(), after.MeanIOsPerTx(), gain)
	}
	// Clustering I/O overhead must have been charged to its own class.
	if db.Store.Stats().Disk.ClusteringIOs() == 0 {
		t.Fatal("reorganization charged no clustering I/O")
	}
}

func TestRunnerWithoutPolicy(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	if _, err := r.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunPhase("free", 10, 1); err != nil {
		t.Fatal(err)
	}
}
