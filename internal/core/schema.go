package core

import (
	"fmt"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// RefSlotBytes is the on-disk size of one reference slot (a 64-bit
// persistent pointer, as in Texas's swizzled page format).
const RefSlotBytes = 8

// NilClass is the CRef value of a suppressed or NIL reference.
const NilClass = 0

// Class is one instantiation of OCB's CLASS metaclass (Fig. 1): a class is
// entirely defined by its MAXNREF typed references and its BASESIZE.
type Class struct {
	// ID is the class number, 1..NC.
	ID int
	// MaxNRef is MAXNREF(ID): the number of reference slots of instances.
	MaxNRef int
	// BaseSize is BASESIZE(ID): the increment size used to compute
	// InstanceSize when the inheritance graph is processed.
	BaseSize int
	// InstanceSize is the instance payload size in bytes after inheritance
	// processing (the Filler array of Fig. 1).
	InstanceSize int
	// TRef[j] is the type of reference j (1..NREFT), j in 0..MaxNRef-1.
	TRef []int
	// CRef[j] is the class referenced by reference j; NilClass when the
	// reference was suppressed by the consistency step or drawn NIL.
	CRef []int
	// Iterator lists every instance of the class, in creation order
	// (the Iterator of the CLASS metaclass in Fig. 1).
	Iterator []backend.OID
}

// DiskSize returns the on-disk footprint of one instance: the Filler
// payload plus the reference slots (the store adds its object header).
func (c *Class) DiskSize() int { return c.InstanceSize + RefSlotBytes*c.MaxNRef }

// Schema is the generated database schema: NC classes plus their
// inter-class reference graph.
type Schema struct {
	// Classes is indexed by class id; Classes[0] is nil (NIL class).
	Classes []*Class
}

// NC returns the number of classes.
func (s *Schema) NC() int { return len(s.Classes) - 1 }

// Class returns the class with the given id (nil for NilClass).
func (s *Schema) Class(id int) *Class {
	if id <= 0 || id >= len(s.Classes) {
		return nil
	}
	return s.Classes[id]
}

// GenerateSchema runs the schema half of the database generation algorithm
// (Fig. 2): class instantiation, inter-class reference selection, and the
// consistency step that suppresses cycles from hierarchies that do not
// allow them and propagates BASESIZE through the inheritance graph.
func GenerateSchema(p Params, src *lewis.Source) (*Schema, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Schema{Classes: make([]*Class, p.NC+1)}

	// Step 1 — instantiation of the CLASS metaclass into NC classes:
	// reference types drawn via DIST1, InstanceSize seeded with BASESIZE.
	for i := 1; i <= p.NC; i++ {
		n := p.MaxNRefOf(i)
		c := &Class{
			ID:           i,
			MaxNRef:      n,
			BaseSize:     p.BaseSizeOf(i),
			InstanceSize: p.BaseSizeOf(i),
			TRef:         make([]int, n),
			CRef:         make([]int, n),
		}
		for j := 0; j < n; j++ {
			c.TRef[j] = p.Dist1.Draw(src, 1, p.NRefT, i)
		}
		s.Classes[i] = c
	}

	// Step 2 — inter-class references drawn via DIST2 from the
	// [INFCLASS, SUPCLASS] locality interval; 0 is a NIL reference.
	for i := 1; i <= p.NC; i++ {
		c := s.Classes[i]
		for j := 0; j < c.MaxNRef; j++ {
			c.CRef[j] = p.Dist2.Draw(src, p.InfClass, p.SupClass, i)
		}
	}

	// Step 3 — graph consistency for hierarchies without cycles. Edges are
	// processed in deterministic (class, slot) order; an edge of an acyclic
	// type is suppressed (CRef = NULL) when adding it to the already
	// accepted graph of its type would close a cycle — which covers both
	// "Class(i) belongs to the graph" and "a cycle is detected" in Fig. 2.
	for t := 1; t <= p.NumAcyclicTypes; t++ {
		accepted := make([][]int, p.NC+1) // adjacency per class, this type only
		for i := 1; i <= p.NC; i++ {
			c := s.Classes[i]
			for j := 0; j < c.MaxNRef; j++ {
				if c.TRef[j] != t || c.CRef[j] == NilClass {
					continue
				}
				target := c.CRef[j]
				if target == i || reachable(accepted, target, i) {
					c.CRef[j] = NilClass
					continue
				}
				accepted[i] = append(accepted[i], target)
			}
		}
	}

	propagateInheritance(p, s)
	return s, nil
}

// propagateInheritance runs Fig. 2's inheritance processing: an inheritance
// reference i -> c declares c a subclass of i, so BASESIZE(i) is added to
// the InstanceSize of every class of c's inheritance subgraph ("add
// BASESIZE(i) to InstanceSize for each subclass"). The graph is acyclic
// after the consistency step, and each browse visits each subclass once.
func propagateInheritance(p Params, s *Schema) {
	inhAdj := make([][]int, p.NC+1)
	type edge struct{ from, to int }
	var inhEdges []edge
	for i := 1; i <= p.NC; i++ {
		c := s.Classes[i]
		for j := 0; j < c.MaxNRef; j++ {
			if p.isInheritanceType(c.TRef[j]) && c.CRef[j] != NilClass {
				inhAdj[i] = append(inhAdj[i], c.CRef[j])
				inhEdges = append(inhEdges, edge{i, c.CRef[j]})
			}
		}
	}
	for _, e := range inhEdges {
		seen := make(map[int]bool)
		var browse func(int)
		browse = func(d int) {
			if seen[d] {
				return
			}
			seen[d] = true
			s.Classes[d].InstanceSize += s.Classes[e.from].BaseSize
			for _, nxt := range inhAdj[d] {
				browse(nxt)
			}
		}
		browse(e.to)
	}
}

// reachable reports whether dst is reachable from src in the adjacency
// lists adj (DFS; adj is acyclic by construction).
func reachable(adj [][]int, src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// CheckSchema verifies the structural invariants the generation algorithm
// promises: CRef targets in range, acyclicity of every hierarchy type, and
// InstanceSize >= BASESIZE. Used by tests and the ocbgen tool.
func CheckSchema(p Params, s *Schema) error {
	if s.NC() != p.NC {
		return fmt.Errorf("ocb: schema has %d classes, want %d", s.NC(), p.NC)
	}
	for i := 1; i <= p.NC; i++ {
		c := s.Classes[i]
		if c == nil {
			return fmt.Errorf("ocb: class %d missing", i)
		}
		if len(c.TRef) != c.MaxNRef || len(c.CRef) != c.MaxNRef {
			return fmt.Errorf("ocb: class %d reference arrays mis-sized", i)
		}
		if c.InstanceSize < c.BaseSize {
			return fmt.Errorf("ocb: class %d InstanceSize %d < BASESIZE %d", i, c.InstanceSize, c.BaseSize)
		}
		for j := 0; j < c.MaxNRef; j++ {
			if c.TRef[j] < 1 || c.TRef[j] > p.NRefT {
				return fmt.Errorf("ocb: class %d ref %d has type %d", i, j, c.TRef[j])
			}
			if c.CRef[j] != NilClass && (c.CRef[j] < 1 || c.CRef[j] > p.NC) {
				return fmt.Errorf("ocb: class %d ref %d targets class %d", i, j, c.CRef[j])
			}
		}
	}
	for t := 1; t <= p.NumAcyclicTypes; t++ {
		adj := make([][]int, p.NC+1)
		for i := 1; i <= p.NC; i++ {
			c := s.Classes[i]
			for j := 0; j < c.MaxNRef; j++ {
				if c.TRef[j] == t && c.CRef[j] != NilClass {
					adj[i] = append(adj[i], c.CRef[j])
				}
			}
		}
		if hasCycle(adj, p.NC) {
			return fmt.Errorf("ocb: reference type %d graph has a cycle", t)
		}
	}
	return nil
}

// hasCycle detects a directed cycle with the classic three-color DFS.
func hasCycle(adj [][]int, n int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n+1)
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 1; i <= n; i++ {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}
