package core

import (
	"time"

	"ocb/internal/backend"
	"ocb/internal/cluster"
	"ocb/internal/disk"
	"ocb/internal/lewis"
	"ocb/internal/stats"
	"ocb/internal/workload"
)

// TypeMetrics aggregates the per-transaction-type measurements OCB
// reports: response time, accessed objects, and I/Os.
type TypeMetrics struct {
	Count    int64
	Response stats.Welford // microseconds
	// ResponseQ retains response-time observations for quantiles
	// (exact up to the sample cap, reservoir beyond).
	ResponseQ stats.Sample
	Objects   stats.Welford
	IOs       stats.Welford
}

// merge folds o into m.
func (m *TypeMetrics) merge(o *TypeMetrics) {
	m.Count += o.Count
	m.Response.Merge(&o.Response)
	m.ResponseQ.Merge(&o.ResponseQ)
	m.Objects.Merge(&o.Objects)
	m.IOs.Merge(&o.IOs)
}

// PhaseMetrics aggregates one protocol phase (cold or warm run), globally
// and per transaction type, plus the disk-counter delta of the phase.
//
// Exactness under concurrency (CLIENTN > 1): Transactions and the
// per-type Count fields are exact and schedule-independent — each client
// replays a deterministic stream. The Objects welfords are
// schedule-independent under the read-only clustering-oriented mix; with
// the Section 5 mutating mix (PInsert/PDelete > 0) a traversal's object
// count depends on which insertions and deletions other clients committed
// first, so only the totals' exactness survives, not their
// run-to-run reproducibility.
// DiskDelta is exact (atomic counters around the whole phase lose
// nothing) and is additionally schedule-independent when the buffer
// holds the phase's working set; under cache pressure the replacement
// policy's choices depend on how clients interleave, so the delta can
// vary slightly between runs. The per-transaction IOs welfords are
// approximate: each transaction's I/O delta is read from the shared disk
// counters, so it includes faults that concurrent clients interleaved
// into the window. Response times are wall-clock and naturally vary run
// to run. With CLIENTN == 1 every metric is exact and reproducible.
type PhaseMetrics struct {
	Name         string
	Transactions int64
	Duration     time.Duration
	Global       TypeMetrics
	PerType      [NumTxTypes]TypeMetrics
	DiskDelta    disk.Stats
}

// MeanIOsPerTx is the phase's headline number: mean transaction I/Os per
// transaction, computed from exact global disk counters (not the
// per-transaction attribution, which is approximate under concurrency).
func (m *PhaseMetrics) MeanIOsPerTx() float64 {
	if m.Transactions == 0 {
		return 0
	}
	return float64(m.DiskDelta.TransactionIOs()) / float64(m.Transactions)
}

// merge folds another phase (a client's share) into m.
func (m *PhaseMetrics) merge(o *PhaseMetrics) {
	m.Transactions += o.Transactions
	m.Global.merge(&o.Global)
	for t := range m.PerType {
		m.PerType[t].merge(&o.PerType[t])
	}
}

// Result is a full protocol execution: cold run then warm run.
type Result struct {
	Cold, Warm *PhaseMetrics
	PolicyName string
	Store      backend.Stats
}

// Runner executes the OCB protocol of §3.3 against a database: each of
// CLIENTN clients performs a cold run of COLDN transactions whose types are
// drawn according to the predefined probabilities, then a warm run of HOTN
// transactions, with THINK latency between transactions.
type Runner struct {
	DB *Database
	// Policy observes the workload; nil for plain measurement.
	Policy cluster.Policy
}

// NewRunner returns a runner; the policy is synchronized automatically
// when the parameter set asks for multiple clients.
func NewRunner(db *Database, policy cluster.Policy) *Runner {
	if db.P.ClientN > 1 && policy != nil {
		policy = cluster.Synchronize(policy)
	}
	return &Runner{DB: db, Policy: policy}
}

// Run executes the full protocol: cold run (ColdN) then warm run (HotN).
func (r *Runner) Run() (*Result, error) {
	cold, err := r.RunPhase("cold", r.DB.P.ColdN, r.DB.P.Seed+1)
	if err != nil {
		return nil, err
	}
	warm, err := r.RunPhase("warm", r.DB.P.HotN, r.DB.P.Seed+2)
	if err != nil {
		return nil, err
	}
	res := &Result{Cold: cold, Warm: warm, Store: r.DB.Store.Stats()}
	if r.Policy != nil {
		res.PolicyName = r.Policy.Name()
	}
	return res, nil
}

// phaseClient is the per-client engine state of an OCB phase: the
// client's executor and the transaction the sampler drew for the op about
// to run.
type phaseClient struct {
	ex      *Executor
	pending Transaction
}

// PhaseSpec builds the workload-engine spec for one OCB protocol phase:
// the nine transaction types as ops, core's own transaction sampler as
// the mix (so streams are bit-identical to the pre-engine protocol), one
// executor per client, and the phase's pacing parameters. Scenario
// presets run these specs directly; RunPhase runs them and folds the
// result back into OCB's PhaseMetrics.
func (r *Runner) PhaseSpec(name string, txPerClient int, seed int64) *workload.Spec {
	p := r.DB.P
	ops := make([]workload.Op, NumTxTypes)
	for t := TxType(0); t < NumTxTypes; t++ {
		ops[t] = workload.Op{
			Name: t.String(),
			Run: func(ctx *workload.Ctx) (int, error) {
				st := ctx.State.(*phaseClient)
				// ExecCounted: the engine samples time and disk counters
				// itself; Exec's own measurement would be dead weight.
				return st.ex.ExecCounted(st.pending)
			},
		}
	}
	return &workload.Spec{
		Name:     name,
		Clients:  p.ClientN,
		Measured: txPerClient,
		Think:    p.Think,
		OpenLoop: p.OpenLoop,
		Seed:     seed,
		Backend:  r.DB.Store,
		Ops:      ops,
		NewClient: func(c int, src *lewis.Source) any {
			return &phaseClient{ex: NewExecutor(r.DB, r.Policy, src)}
		},
		Next: func(ctx *workload.Ctx) int {
			st := ctx.State.(*phaseClient)
			st.pending = SampleTransaction(p, ctx.Src)
			return int(st.pending.Type)
		},
	}
}

// RunPhase executes one phase of txPerClient transactions per client,
// deterministically in seed. Phases with equal seeds replay identical
// transaction streams — the experiments use this to compare placements
// before and after reclustering on the same workload. The fan-out,
// pacing and measurement live in the workload engine; this wrapper only
// translates the unified result back into OCB's PhaseMetrics.
func (r *Runner) RunPhase(name string, txPerClient int, seed int64) (*PhaseMetrics, error) {
	res, err := workload.Run(r.PhaseSpec(name, txPerClient, seed))
	if err != nil {
		return nil, err
	}
	return phaseFromResult(res), nil
}

// phaseFromResult folds a workload engine result into PhaseMetrics. The
// engine's op order is the TxType order, so the translation is direct.
func phaseFromResult(res *workload.Result) *PhaseMetrics {
	m := &PhaseMetrics{
		Name:         res.Name,
		Transactions: res.Executed,
		Duration:     res.Duration,
		Global:       typeMetricsFrom(&res.Total),
		DiskDelta:    res.DiskDelta,
	}
	for t := range m.PerType {
		m.PerType[t] = typeMetricsFrom(&res.PerOp[t])
	}
	return m
}

// typeMetricsFrom converts one engine op aggregate (the fields coincide).
func typeMetricsFrom(om *workload.OpMetrics) TypeMetrics {
	return TypeMetrics{
		Count:     om.Count,
		Response:  om.Response,
		ResponseQ: om.ResponseQ,
		Objects:   om.Objects,
		IOs:       om.IOs,
	}
}

// SampleTransaction draws one transaction according to the workload
// parameters: type by the PSET/PSIMPLE/PHIER/PSTOCH probabilities, root by
// DIST5 (RAND5), depth by the type's depth parameter, hierarchy reference
// type uniform over the NREFT types, and direction by PReverse.
func SampleTransaction(p Params, src *lewis.Source) Transaction {
	u := src.Float64()
	var tx Transaction
	cum := p.PSet
	switch {
	case u < cum:
		tx.Type = SetAccess
		tx.Depth = p.SetDepth
	case u < cum+p.PSimple:
		tx.Type = SimpleTraversal
		tx.Depth = p.SimDepth
	case u < cum+p.PSimple+p.PHier:
		tx.Type = HierarchyTraversal
		tx.Depth = p.HieDepth
		tx.RefType = src.IntRange(1, p.NRefT)
	case u < cum+p.PSimple+p.PHier+p.PStoch:
		tx.Type = StochasticTraversal
		tx.Depth = p.StoDepth
	case u < cum+p.PSimple+p.PHier+p.PStoch+p.PUpdate:
		tx.Type = UpdateOp
	case u < cum+p.PSimple+p.PHier+p.PStoch+p.PUpdate+p.PInsert:
		tx.Type = InsertOp
	case u < cum+p.PSimple+p.PHier+p.PStoch+p.PUpdate+p.PInsert+p.PDelete:
		tx.Type = DeleteOp
	case u < cum+p.PSimple+p.PHier+p.PStoch+p.PUpdate+p.PInsert+p.PDelete+p.PScan:
		tx.Type = ScanOp
	default:
		tx.Type = RangeOp
	}
	tx.Root = backend.OID(p.Dist5.Draw(src, 1, p.NO, 0))
	if p.PReverse > 0 && src.Bernoulli(p.PReverse) {
		tx.Reverse = true
	}
	return tx
}

// Reorganize triggers the policy's physical reorganization (phase 5 runs
// "when the system is idle"; the protocol calls it between measurement
// phases) and returns its cost.
func (r *Runner) Reorganize() (backend.RelocStats, error) {
	if r.Policy == nil {
		return backend.RelocStats{}, nil
	}
	// Everything phase 5 does is clustering overhead, so classify its I/O
	// for the duration on backends that expose the hook. The paged driver
	// additionally classifies inside Relocate itself; this covers drivers
	// that do not self-classify.
	backend.SetIOClass(r.DB.Store, disk.Clustering)
	defer backend.SetIOClass(r.DB.Store, disk.Transaction)
	return r.Policy.Reorganize(r.DB.Store)
}
