package core

import (
	"bytes"
	"testing"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// TestSaveLoadAfterChurn persists a database that has seen generic-workload
// insertions and deletions: the nil slots must survive the round trip and
// the live set must rebuild exactly.
func TestSaveLoadAfterChurn(t *testing.T) {
	p := genericSmall()
	db := MustGenerate(p)
	src := lewis.New(77)
	for i := 0; i < 8; i++ {
		if _, err := db.InsertObject(src); err != nil {
			t.Fatal(err)
		}
	}
	for oid := backend.OID(10); oid < 60; oid += 5 {
		if err := db.DeleteObject(oid); err != nil {
			t.Fatal(err)
		}
	}
	wantLive := db.NumLive()
	wantMax := len(db.Objects) - 1

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumLive() != wantLive {
		t.Fatalf("live = %d, want %d", loaded.NumLive(), wantLive)
	}
	if len(loaded.Objects)-1 != wantMax {
		t.Fatalf("max OID = %d, want %d", len(loaded.Objects)-1, wantMax)
	}
	// Deleted slots stay deleted; inserted objects stay present.
	if loaded.Object(10) != nil {
		t.Fatal("deleted object resurrected")
	}
	if loaded.Object(backend.OID(p.NO+1)) == nil {
		t.Fatal("inserted object lost")
	}
	if err := CheckDatabase(loaded); err != nil {
		t.Fatal(err)
	}
	if err := backend.CheckIntegrity(loaded.Store); err != nil {
		t.Fatal(err)
	}
	// The loaded database keeps working under more churn.
	ex := NewExecutor(loaded, nil, lewis.New(5))
	if _, err := ex.Exec(Transaction{Type: DeleteOp, Root: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exec(Transaction{Type: InsertOp}); err != nil {
		t.Fatal(err)
	}
	if err := CheckDatabase(loaded); err != nil {
		t.Fatal(err)
	}
}
