package core

import (
	"errors"
	"strings"
	"testing"

	"ocb/internal/backend"
	"ocb/internal/disk"
	"ocb/internal/lewis"
)

// These tests inject disk faults through the disk.FailureHook and verify
// that every layer — store, executor, runner — propagates the error
// instead of silently mis-counting.

var errInjected = errors.New("injected disk fault")

// faultAfter returns a hook failing every I/O after the first n.
func faultAfter(n int) func(disk.Op, disk.PageID) error {
	count := 0
	return func(disk.Op, disk.PageID) error {
		count++
		if count > n {
			return errInjected
		}
		return nil
	}
}

func TestTraversalPropagatesReadFault(t *testing.T) {
	p := smallParams()
	p.BufferPages = 4 // force faults during the traversal
	db := MustGenerate(p)
	db.Store.DropCache()
	storeDisk(db).FailureHook = faultAfter(3)

	ex := NewExecutor(db, nil, lewis.New(1))
	_, err := ex.Exec(Transaction{Type: SimpleTraversal, Root: 1, Depth: 3})
	if !errors.Is(err, errInjected) {
		t.Fatalf("fault not propagated: %v", err)
	}
}

func TestRunnerPropagatesFault(t *testing.T) {
	p := smallParams()
	p.BufferPages = 4
	db := MustGenerate(p)
	db.Store.DropCache()
	storeDisk(db).FailureHook = faultAfter(5)

	r := NewRunner(db, nil)
	_, err := r.RunPhase("faulty", 50, 1)
	if !errors.Is(err, errInjected) {
		t.Fatalf("runner swallowed the fault: %v", err)
	}
	// The error message identifies the failing transaction.
	if err != nil && !strings.Contains(err.Error(), "transaction") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestCommitPropagatesWriteFault(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	storeDisk(db).FailureHook = func(op disk.Op, _ disk.PageID) error {
		if op == disk.OpWrite {
			return errInjected
		}
		return nil
	}
	ex := NewExecutor(db, nil, lewis.New(1))
	_, err := ex.Exec(Transaction{Type: UpdateOp, Root: 1})
	if !errors.Is(err, errInjected) {
		t.Fatalf("commit fault not propagated: %v", err)
	}
}

func TestInsertPropagatesFault(t *testing.T) {
	p := smallParams()
	p.BufferPages = 2
	db := MustGenerate(p)
	db.Store.DropCache()
	storeDisk(db).FailureHook = func(disk.Op, disk.PageID) error { return errInjected }
	ex := NewExecutor(db, nil, lewis.New(1))
	if _, err := ex.Exec(Transaction{Type: InsertOp}); !errors.Is(err, errInjected) {
		t.Fatalf("insert fault not propagated: %v", err)
	}
}

func TestRelocatePropagatesFault(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	cluster := db.AllOIDs()[:6]
	storeDisk(db).FailureHook = faultAfter(0)
	_, err := db.Store.(backend.Relocator).Relocate([][]backend.OID{cluster})
	if !errors.Is(err, errInjected) {
		t.Fatalf("relocation fault not propagated: %v", err)
	}
	// After clearing the fault the store must still serve reads.
	storeDisk(db).FailureHook = nil
	if err := db.Store.Access(cluster[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSaveUnderWriteFault(t *testing.T) {
	p := smallParams()
	db := MustGenerate(p)
	// Make a page dirty so Save's flush must write.
	if err := db.Store.Update(1); err != nil {
		t.Fatal(err)
	}
	storeDisk(db).FailureHook = func(op disk.Op, _ disk.PageID) error {
		if op == disk.OpWrite {
			return errInjected
		}
		return nil
	}
	var sink strings.Builder
	if err := db.Save(&sink); !errors.Is(err, errInjected) {
		t.Fatalf("save fault not propagated: %v", err)
	}
}
