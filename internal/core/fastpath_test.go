package core

import (
	"fmt"
	"testing"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// TestTraversalFastPathAllocFree is the allocation regression gate of the
// fast-path rewrite: once an executor's scratch is warm and the database
// resident, no transaction type may allocate — per visited object or per
// transaction — so the harness's own overhead stays out of the measured
// response times. Every call now dispatches through the backend.Backend
// interface, so the gate runs against each registered backend: interface
// dispatch on the hot Access/AccessBatch path must not reintroduce
// per-transaction allocations on any driver.
func TestTraversalFastPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector; allocation counts are not meaningful")
	}
	// Local drivers only: the remote driver's round trips allocate in the
	// transport (and need a served endpoint); its hot-path economy is the
	// pooled connection, not allocation freedom.
	for _, be := range backend.ListLocal() {
		t.Run(be, func(t *testing.T) {
			p := chainParams(3, 2000)
			p.Backend = be
			p.BufferPages = 2048 // resident: no eviction churn in the pool
			db := MustGenerate(p)
			// Durable backends hold files (ephemeral waldisk a scratch
			// directory); release them when the subtest ends.
			t.Cleanup(func() { _ = backend.Shutdown(db.Store) })
			ex := NewExecutor(db, nil, lewis.New(1))
			// Make the whole database resident before measuring: backends
			// with a read cache (waldisk) admit an object on first touch,
			// and a randomized traversal keeps touching objects for the
			// first time long after its own warmup run. One full scan warms
			// every object, so the measured runs see the steady state.
			if _, err := ex.Exec(Transaction{Type: ScanOp}); err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct {
				name string
				tx   Transaction
			}{
				{"set", Transaction{Type: SetAccess, Root: 1, Depth: 3}},
				{"simple", Transaction{Type: SimpleTraversal, Root: 1, Depth: 3}},
				{"hierarchy", Transaction{Type: HierarchyTraversal, Root: 1, Depth: 5, RefType: 1}},
				{"stochastic", Transaction{Type: StochasticTraversal, Root: 1, Depth: 50}},
				{"scan", Transaction{Type: ScanOp}},
				{"range", Transaction{Type: RangeOp, Root: 1}},
			} {
				t.Run(tc.name, func(t *testing.T) {
					if _, err := ex.Exec(tc.tx); err != nil {
						t.Fatal(err)
					}
					avg := testing.AllocsPerRun(50, func() {
						if _, err := ex.Exec(tc.tx); err != nil {
							t.Fatal(err)
						}
					})
					if avg != 0 {
						t.Fatalf("%s allocates %.1f per transaction on %s, want 0", tc.name, avg, be)
					}
				})
			}
		})
	}
}

// TestSetAccessReverseAllocFree covers the BackRef discovery path of the
// batched breadth-first walk.
func TestSetAccessReverseAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector; allocation counts are not meaningful")
	}
	p := chainParams(3, 2000)
	p.BufferPages = 2048
	db := MustGenerate(p)
	ex := NewExecutor(db, nil, lewis.New(1))
	tx := Transaction{Type: SetAccess, Root: 1, Depth: 3, Reverse: true}
	if _, err := ex.Exec(tx); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := ex.Exec(tx); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("reverse set access allocates %.1f per transaction, want 0", avg)
	}
}

// TestRunPhaseEngineAllocFree guards the unified workload engine's
// measured loop: a whole phase through Runner.RunPhase (spec build,
// client fan-out, per-op timing, metric recording) must cost only its
// fixed per-phase setup, not per-transaction allocations. The marginal
// cost of doubling the transaction count is pinned well below one
// allocation per transaction (the residue is amortized quantile-reservoir
// growth).
func TestRunPhaseEngineAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector; allocation counts are not meaningful")
	}
	p := chainParams(3, 2000)
	p.BufferPages = 2048 // resident: no eviction churn in the pool
	db := MustGenerate(p)
	r := NewRunner(db, nil)
	if _, err := r.RunPhase("warm", 200, 7); err != nil {
		t.Fatal(err)
	}
	measure := func(n int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := r.RunPhase("alloc", n, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	base, double := measure(200), measure(400)
	if perTx := (double - base) / 200; perTx > 0.5 {
		t.Fatalf("engine measured loop allocates %.3f per transaction, want ~0 (phase setup only: %0.f/%0.f allocs)",
			perTx, base, double)
	}
	if base > 200 {
		t.Fatalf("per-phase setup costs %.0f allocs for 200 tx, want bounded setup", base)
	}
}

// phaseGold pins one phase's exact CLIENTN=1 measurements (captured from
// the pre-rewrite implementation): transaction totals, per-type counts and
// mean accessed objects, and the phase's disk-counter delta. Response
// times are wall clock and therefore excluded. Floats are compared via
// %.10g, which pins all digits the Welford accumulator reproduces
// deterministically.
type phaseGold struct {
	tx            int64
	reads, writes uint64
	objMean       string
	perType       map[TxType]typeGold
}

type typeGold struct {
	count   int64
	objMean string
	ioMean  string
}

func checkPhaseGold(t *testing.T, tag string, m *PhaseMetrics, g phaseGold) {
	t.Helper()
	if m.Transactions != g.tx {
		t.Errorf("%s: transactions = %d, want %d", tag, m.Transactions, g.tx)
	}
	if r := m.DiskDelta.Reads[0]; r != g.reads {
		t.Errorf("%s: transaction reads = %d, want %d", tag, r, g.reads)
	}
	if w := m.DiskDelta.Writes[0]; w != g.writes {
		t.Errorf("%s: transaction writes = %d, want %d", tag, w, g.writes)
	}
	if got := fmt.Sprintf("%.10g", m.Global.Objects.Mean()); got != g.objMean {
		t.Errorf("%s: objects mean = %s, want %s", tag, got, g.objMean)
	}
	for typ, want := range g.perType {
		tm := &m.PerType[typ]
		if tm.Count != want.count {
			t.Errorf("%s/%s: count = %d, want %d", tag, typ, tm.Count, want.count)
		}
		if got := fmt.Sprintf("%.10g", tm.Objects.Mean()); got != want.objMean {
			t.Errorf("%s/%s: objects mean = %s, want %s", tag, typ, got, want.objMean)
		}
		if got := fmt.Sprintf("%.10g", tm.IOs.Mean()); got != want.ioMean {
			t.Errorf("%s/%s: I/O mean = %s, want %s", tag, typ, got, want.ioMean)
		}
	}
	for typ := TxType(0); typ < NumTxTypes; typ++ {
		if _, pinned := g.perType[typ]; !pinned && m.PerType[typ].Count != 0 {
			t.Errorf("%s/%s: unexpected transactions (%d)", tag, typ, m.PerType[typ].Count)
		}
	}
}

// TestPhaseMetricsGoldenCLIENTN1 replays two deterministic single-client
// protocols — the clustering-oriented mix and the Section 5 generic mix —
// and asserts the phase metrics are bit-identical to the values the
// pre-rewrite executor produced on the same seeds. This is the contract of
// the fast-path overhaul: faster, but measuring exactly the same workload.
func TestPhaseMetricsGoldenCLIENTN1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden protocol replay skipped in -short mode")
	}

	p := DefaultParams()
	p.NO = 2000
	p.SupRef = 2000
	p.ColdN = 200
	p.HotN = 600
	p.BufferPages = 64
	p.Seed = 77
	db := MustGenerate(p)
	res, err := NewRunner(db, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkPhaseGold(t, "clustering/cold", res.Cold, phaseGold{
		tx: 200, reads: 57960, writes: 0, objMean: "360.045",
		perType: map[TxType]typeGold{
			SetAccess:           {53, "572.0188679", "474.2264151"},
			SimpleTraversal:     {48, "699.6458333", "553.6666667"},
			HierarchyTraversal:  {51, "111", "85.17647059"},
			StochasticTraversal: {48, "51", "39.70833333"},
		},
	})
	checkPhaseGold(t, "clustering/warm", res.Warm, phaseGold{
		tx: 600, reads: 166416, writes: 0, objMean: "345.3166667",
		perType: map[TxType]typeGold{
			SetAccess:           {132, "558.6060606", "463.4848485"},
			SimpleTraversal:     {153, "710.7581699", "563.0915033"},
			HierarchyTraversal:  {150, "108.62", "83.02666667"},
			StochasticTraversal: {165, "51", "40.17575758"},
		},
	})

	g := GenericParams()
	g.NO = 1500
	g.SupRef = 1500
	g.ColdN = 150
	g.HotN = 400
	g.BufferPages = 64
	g.Seed = 101
	gdb := MustGenerate(g)
	gres, err := NewRunner(gdb, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkPhaseGold(t, "generic/cold", gres.Cold, phaseGold{
		tx: 150, reads: 25809, writes: 97, objMean: "258.8733333",
		perType: map[TxType]typeGold{
			SetAccess:           {16, "590.4375", "465.0625"},
			SimpleTraversal:     {26, "772.8461538", "582.4230769"},
			HierarchyTraversal:  {29, "68.62068966", "47.44827586"},
			StochasticTraversal: {17, "51", "39.47058824"},
			UpdateOp:            {26, "1", "1.769230769"},
			InsertOp:            {14, "10.35714286", "0.2142857143"},
			DeleteOp:            {6, "11.66666667", "20"},
			ScanOp:              {4, "1503", "269.75"},
			RangeOp:             {12, "15", "2.25"},
		},
	})
	checkPhaseGold(t, "generic/warm", gres.Warm, phaseGold{
		tx: 400, reads: 70948, writes: 238, objMean: "256.0875",
		perType: map[TxType]typeGold{
			SetAccess:           {53, "554.2264151", "436.2641509"},
			SimpleTraversal:     {71, "774.8169014", "577.1971831"},
			HierarchyTraversal:  {59, "56.25423729", "40.3559322"},
			StochasticTraversal: {62, "51", "36.77419355"},
			UpdateOp:            {72, "1", "1.708333333"},
			InsertOp:            {29, "9.793103448", "0.275862069"},
			DeleteOp:            {16, "10.125", "17.1875"},
			ScanOp:              {7, "1512.571429", "275.7142857"},
			RangeOp:             {31, "14.90322581", "2.774193548"},
		},
	})
	if err := CheckDatabase(gdb); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}
}

// TestLiveSnapshotMaintenance exercises the cached ascending live-OID
// snapshot across insertions and deletions.
func TestLiveSnapshotMaintenance(t *testing.T) {
	p := chainParams(2, 200)
	db := MustGenerate(p)
	src := lewis.New(9)

	snap := db.LiveOIDs()
	if len(snap) != 200 {
		t.Fatalf("initial snapshot has %d entries", len(snap))
	}
	if &snap[0] != &db.LiveOIDs()[0] {
		t.Fatal("repeated LiveOIDs calls rebuild instead of sharing the snapshot")
	}

	// Insertion extends the snapshot in place (ascending OIDs).
	obj, err := db.InsertObject(src)
	if err != nil {
		t.Fatal(err)
	}
	snap = db.LiveOIDs()
	if snap[len(snap)-1] != obj.OID {
		t.Fatalf("snapshot tail = %d, want inserted %d", snap[len(snap)-1], obj.OID)
	}

	// Deletion invalidates; the next call rebuilds without the victim.
	if err := db.DeleteObject(5); err != nil {
		t.Fatal(err)
	}
	snap = db.LiveOIDs()
	if len(snap) != 200 {
		t.Fatalf("post-delete snapshot has %d entries, want 200", len(snap))
	}
	for i, oid := range snap {
		if oid == 5 {
			t.Fatal("deleted OID still in snapshot")
		}
		if i > 0 && snap[i-1] >= oid {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}

	// ResolveLive rides the snapshot: dead OID resolves upward, the top
	// wraps to the first live OID.
	if got, ok := db.ResolveLive(5); !ok || got != 6 {
		t.Fatalf("ResolveLive(5) = %d, %v; want 6", got, ok)
	}
	if got, ok := db.ResolveLive(obj.OID + 1); !ok || got != snap[0] {
		t.Fatalf("ResolveLive(past top) = %d, %v; want wrap to %d", got, ok, snap[0])
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatal(err)
	}
}
