package core

import (
	"fmt"
	"time"

	"ocb/internal/backend"
	"ocb/internal/cluster"
	"ocb/internal/lewis"
	"ocb/internal/workload"
)

// TxType enumerates OCB's transaction classes (Fig. 3).
type TxType int

// The four OCB transaction types. Set-oriented accesses explore in breadth
// first on all references; navigational accesses are depth first: simple
// traversals on all references, hierarchy traversals always following the
// same reference type, stochastic traversals choosing the next reference at
// random with p(N) = 1/2^N (Markov-chain-like, after Tsangaris & Naughton).
const (
	SetAccess TxType = iota
	SimpleTraversal
	HierarchyTraversal
	StochasticTraversal
	// The generic transaction set of the paper's Section 5 extension —
	// operations initially discarded because they cannot benefit from
	// clustering. Their occurrence probabilities default to 0.
	UpdateOp
	InsertOp
	DeleteOp
	ScanOp
	RangeOp
	NumTxTypes // sentinel
)

// String returns the transaction type name as used in reports.
func (t TxType) String() string {
	switch t {
	case SetAccess:
		return "set"
	case SimpleTraversal:
		return "simple"
	case HierarchyTraversal:
		return "hierarchy"
	case StochasticTraversal:
		return "stochastic"
	case UpdateOp:
		return "update"
	case InsertOp:
		return "insert"
	case DeleteOp:
		return "delete"
	case ScanOp:
		return "scan"
	case RangeOp:
		return "range"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// Transaction is one workload unit: a typed exploration from a root object
// up to a depth, optionally reversed ("ascending" the graphs through
// backward references).
type Transaction struct {
	Type TxType
	Root backend.OID
	// Depth bounds the exploration: hops from the root for the traversals,
	// steps for the stochastic walk.
	Depth int
	// RefType is the reference type a hierarchy traversal follows.
	RefType int
	// Reverse makes the transaction follow BackRef links instead of ORef.
	Reverse bool
}

// TxResult reports one executed transaction.
type TxResult struct {
	ObjectsAccessed int
	IOs             uint64
	Duration        time.Duration
}

// Executor runs transactions against a database on behalf of one client,
// feeding the clustering policy's observation phase along the way.
//
// The executor owns reusable per-client scratch state — a
// generation-stamped seen-set and pooled BFS frontier buffers — so the
// transaction fast path allocates nothing per visited object: the harness's
// own overhead stays out of the measured response times, as the benchmark
// design demands.
type Executor struct {
	DB *Database
	// Policy receives ObserveLink/ObserveRoot/EndTransaction callbacks;
	// nil means no observation (plain measurement run).
	Policy cluster.Policy
	// Src drives the stochastic traversal's random choices.
	Src *lewis.Source

	// seen deduplicates set-access visits; reset is O(1) via generation
	// stamping instead of reallocating a map per transaction (the scratch
	// now lives in the workload engine, shared by every suite).
	seen workload.SeenSet
	// frontier/next are the BFS level buffers, swapped each level;
	// nextFrom records each discovery's parent for policy observation.
	frontier []backend.OID
	next     []backend.OID
	nextFrom []backend.OID
}

// NewExecutor returns an executor for db feeding policy (may be nil).
func NewExecutor(db *Database, policy cluster.Policy, src *lewis.Source) *Executor {
	return &Executor{DB: db, Policy: policy, Src: src}
}

// mutating reports whether the transaction restructures the in-memory
// object graph (and therefore needs the database's exclusive lock).
func (tx Transaction) mutating() bool {
	return tx.Type == InsertOp || tx.Type == DeleteOp
}

// Exec runs one transaction, returning objects accessed, I/Os charged to
// the transaction class, and wall-clock duration.
//
// Concurrency: read-only transaction types share-lock the database's graph
// lock, so traversals from many clients proceed in parallel; insertions
// and deletions take it exclusively (they restructure Objects, iterators
// and BackRefs). Store-level faulting is internally sharded.
//
// I/O attribution note: the I/O delta is read from the shared disk
// counters, so with CLIENTN > 1 concurrent clients the per-transaction
// figure includes interleaved faults of other clients; global phase totals
// remain exact. With one client the figure is exact (the configuration of
// every experiment in the paper's Section 4).
func (e *Executor) Exec(tx Transaction) (TxResult, error) {
	if tx.mutating() {
		e.DB.mu.Lock()
		defer e.DB.mu.Unlock()
	} else {
		e.DB.mu.RLock()
		defer e.DB.mu.RUnlock()
	}
	before := e.DB.Store.DiskStats()
	//ocblint:allow determinism -- harness timing, not op logic
	start := time.Now()

	accessed, err := e.execLocked(tx)
	if err != nil {
		return TxResult{}, err
	}

	after := e.DB.Store.DiskStats()
	return TxResult{
		ObjectsAccessed: accessed,
		IOs:             after.TransactionIOs() - before.TransactionIOs(),
		//ocblint:allow determinism -- harness timing, not op logic
		Duration: time.Since(start),
	}, nil
}

// ExecCounted is Exec without the measuring wrapper: it takes the same
// locks and runs the same transaction body but returns only the accessed
// object count. The workload engine uses it on the hot phase path — the
// engine samples time and disk counters itself, so Exec's per-transaction
// measurement would be computed twice and discarded.
func (e *Executor) ExecCounted(tx Transaction) (int, error) {
	if tx.mutating() {
		e.DB.mu.Lock()
		defer e.DB.mu.Unlock()
	} else {
		e.DB.mu.RLock()
		defer e.DB.mu.RUnlock()
	}
	return e.execLocked(tx)
}

// execLocked is the transaction body shared by Exec and ExecCounted; the
// caller holds the database's graph lock in the mode tx.mutating()
// demands.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) execLocked(tx Transaction) (int, error) {
	// Under the generic workload, deletions may have invalidated the
	// sampled root; an in-range but deleted root resolves onto the live
	// object set. Out-of-range roots remain errors.
	if tx.Type != InsertOp && tx.Type != ScanOp {
		if tx.Root == backend.NilOID || int(tx.Root) >= len(e.DB.Objects) {
			return 0, fmt.Errorf("ocb: bad root %d", tx.Root)
		}
		if e.DB.Objects[tx.Root] == nil {
			root, ok := e.DB.ResolveLive(tx.Root)
			if !ok {
				return 0, fmt.Errorf("ocb: no live objects left")
			}
			tx.Root = root
		}
	}

	var accessed int
	var err error
	switch tx.Type {
	case SetAccess:
		accessed, err = e.setAccess(tx.Root, tx.Depth, tx.Reverse)
	case SimpleTraversal:
		accessed, err = e.simple(tx.Root, tx.Depth, tx.Reverse)
	case HierarchyTraversal:
		accessed, err = e.hierarchy(tx.Root, tx.Depth, tx.RefType, tx.Reverse)
	case StochasticTraversal:
		accessed, err = e.stochastic(tx.Root, tx.Depth, tx.Reverse)
	case UpdateOp:
		accessed, err = e.update(tx.Root)
	case InsertOp:
		accessed, err = e.insert()
	case DeleteOp:
		accessed, err = e.delete(tx.Root)
	case ScanOp:
		accessed, err = e.scan()
	case RangeOp:
		accessed, err = e.rangeLookup(tx.Root)
	default:
		return 0, fmt.Errorf("ocb: unknown transaction type %v", tx.Type)
	}
	if err != nil {
		return 0, err
	}
	if e.Policy != nil {
		e.Policy.EndTransaction()
	}
	return accessed, nil
}

// visit faults the object and notifies the policy of the crossing from
// src (NilOID for roots).
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) visit(from, to backend.OID) error {
	if err := e.DB.Store.Access(to); err != nil {
		return err
	}
	if e.Policy != nil {
		if from == backend.NilOID {
			e.Policy.ObserveRoot(to)
		} else {
			e.Policy.ObserveLink(from, to)
		}
	}
	return nil
}

// discover marks a successor as seen and queues it for the level's batched
// access, remembering the parent link for policy observation.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) discover(from, to backend.OID) {
	if !e.seen.Add(to) {
		return
	}
	e.next = append(e.next, to)
	e.nextFrom = append(e.nextFrom, from)
}

// setAccess is the set-oriented access: breadth-first on all the
// references, up to depth hops, with set semantics (each object accessed
// once — the breadth-first result is a set of qualifying objects). Each
// level's discoveries are faulted through Store.AccessBatch — the page
// faults land in exactly the discovery order sequential Access calls would
// have used, so single-client measurements are unchanged — and the frontier
// buffers and seen-set are the executor's reusable scratch.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) setAccess(root backend.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	e.seen.Reset(len(e.DB.Objects))
	e.seen.Add(root)
	if err := e.visit(backend.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	e.frontier = append(e.frontier[:0], root)
	for level := 0; level < depth && len(e.frontier) > 0; level++ {
		e.next = e.next[:0]
		e.nextFrom = e.nextFrom[:0]
		for _, oid := range e.frontier {
			obj := e.DB.Object(oid)
			if reverse {
				for _, succ := range obj.BackRef {
					e.discover(oid, succ)
				}
			} else {
				for _, succ := range obj.ORef {
					if succ != backend.NilOID {
						e.discover(oid, succ)
					}
				}
			}
		}
		n, err := e.DB.Store.AccessBatch(e.next)
		if e.Policy != nil {
			for i := 0; i < n; i++ {
				e.Policy.ObserveLink(e.nextFrom[i], e.next[i])
			}
		}
		accessed += n
		if err != nil {
			return accessed, err
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return accessed, nil
}

// simple is the simple traversal: depth-first on all the references up to
// depth hops, duplicates allowed (as in OO1's part tree exploration).
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) simple(root backend.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(backend.NilOID, root); err != nil {
		return 0, err
	}
	n, err := e.simpleDFS(root, depth, reverse)
	return 1 + n, err
}

// simpleDFS walks all references of oid depth-first for remaining more
// hops, iterating reference slots in place (no successor slice is
// materialized) and returning how many objects it accessed.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) simpleDFS(oid backend.OID, remaining int, reverse bool) (int, error) {
	if remaining == 0 {
		return 0, nil
	}
	obj := e.DB.Object(oid)
	n := 0
	if reverse {
		for _, succ := range obj.BackRef {
			if err := e.visit(oid, succ); err != nil {
				return n, err
			}
			n++
			c, err := e.simpleDFS(succ, remaining-1, reverse)
			n += c
			if err != nil {
				return n, err
			}
		}
		return n, nil
	}
	for _, succ := range obj.ORef {
		if succ == backend.NilOID {
			continue
		}
		if err := e.visit(oid, succ); err != nil {
			return n, err
		}
		n++
		c, err := e.simpleDFS(succ, remaining-1, reverse)
		n += c
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// hierarchy is the hierarchy traversal: depth-first always following the
// same type of reference.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) hierarchy(root backend.OID, depth, refType int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(backend.NilOID, root); err != nil {
		return 0, err
	}
	n, err := e.hierarchyDFS(root, depth, refType, reverse)
	return 1 + n, err
}

// hierarchyDFS walks the references of oid whose declared type is refType,
// depth-first for remaining more hops. Reversed, it follows the BackRef
// entries whose owning object points back at oid through a reference of
// that type. The type filter is applied in place while iterating, so no
// successor slice is materialized.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) hierarchyDFS(oid backend.OID, remaining, refType int, reverse bool) (int, error) {
	if remaining == 0 {
		return 0, nil
	}
	obj := e.DB.Object(oid)
	n := 0
	if reverse {
		for _, from := range obj.BackRef {
			fobj := e.DB.Object(from)
			fclass := e.DB.Schema.Class(fobj.Class)
			matched := false
			for k, r := range fobj.ORef {
				if r == obj.OID && fclass.TRef[k] == refType {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			if err := e.visit(oid, from); err != nil {
				return n, err
			}
			n++
			c, err := e.hierarchyDFS(from, remaining-1, refType, reverse)
			n += c
			if err != nil {
				return n, err
			}
		}
		return n, nil
	}
	class := e.DB.Schema.Class(obj.Class)
	for k, succ := range obj.ORef {
		if succ == backend.NilOID || class.TRef[k] != refType {
			continue
		}
		if err := e.visit(oid, succ); err != nil {
			return n, err
		}
		n++
		c, err := e.hierarchyDFS(succ, remaining-1, refType, reverse)
		n += c
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// stochastic is the stochastic traversal: a random walk of depth steps
// where reference number N is crossed with probability p(N) = 1/2^N,
// approaching the Markov-chain access patterns of real queries
// (Tsangaris & Naughton). The geometric draw is folded modulo the number
// of available references so that every step makes progress; the walk
// stops early at objects without references.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) stochastic(root backend.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(backend.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	cur := root
	for step := 0; step < depth; step++ {
		obj := e.DB.Object(cur)
		// Count the successors in place (non-NIL forward slots, or the
		// whole BackRef list reversed) instead of materializing them.
		count := len(obj.BackRef)
		if !reverse {
			count = 0
			for _, r := range obj.ORef {
				if r != backend.NilOID {
					count++
				}
			}
		}
		if count == 0 {
			break
		}
		// Geometric draw: P(N = k) = 1/2^k, k >= 1.
		n := 1
		for e.Src.Bernoulli(0.5) {
			n++
		}
		k := (n - 1) % count
		var next backend.OID
		if reverse {
			next = obj.BackRef[k]
		} else {
			// k-th non-NIL forward slot, in slot order.
			for _, r := range obj.ORef {
				if r == backend.NilOID {
					continue
				}
				if k == 0 {
					next = r
					break
				}
				k--
			}
		}
		if err := e.visit(cur, next); err != nil {
			return accessed, err
		}
		accessed++
		cur = next
	}
	return accessed, nil
}

// update modifies one object in place and commits — the update operation
// the clustering-oriented workload excludes (§3.3) and the generic
// extension (§5) restores.
func (e *Executor) update(root backend.OID) (int, error) {
	if err := e.DB.Store.Update(root); err != nil {
		return 0, err
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	return 1, e.DB.Store.Commit()
}

// insert creates one new object per the generation rules and commits.
func (e *Executor) insert() (int, error) {
	obj, err := e.DB.InsertObject(e.Src)
	if err != nil {
		return 0, err
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(obj.OID)
	}
	// The new object plus each referenced object touched for BackRef
	// maintenance.
	n := 1
	for _, r := range obj.ORef {
		if r != backend.NilOID {
			n++
		}
	}
	return n, nil
}

// delete removes the root object, repairing the graph, and commits.
func (e *Executor) delete(root backend.OID) (int, error) {
	obj := e.DB.Object(root)
	touched := 1 + len(obj.BackRef)
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	if err := e.DB.DeleteObject(root); err != nil {
		return 0, err
	}
	return touched, nil
}

// scanBatch bounds how many objects one AccessBatch call covers during a
// scan, so a whole-database scan does not pin store locks for its full
// duration.
const scanBatch = 512

// scan visits every live object in OID order — HyperModel's Sequential
// Scan, excluded from the clustering workload and restored by §5. It walks
// one live-OID snapshot (the database's cached ascending snapshot, not a
// freshly built slice) in bounded batches through Store.AccessBatch.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) scan() (int, error) {
	live := e.DB.LiveOIDs()
	n := 0
	for start := 0; start < len(live); start += scanBatch {
		end := start + scanBatch
		if end > len(live) {
			end = len(live)
		}
		k, err := e.DB.Store.AccessBatch(live[start:end])
		n += k
		if err != nil {
			return n, err
		}
	}
	if e.Policy != nil && n > 0 {
		e.Policy.ObserveRoot(live[0])
	}
	return n, nil
}

// rangeLookup visits the live objects whose OID falls within a 1%-of-NO
// window starting at the root — HyperModel's Range Lookup analogue over
// the object identifier attribute.
//
//ocblint:allocfree -- steady-state hot path
func (e *Executor) rangeLookup(root backend.OID) (int, error) {
	width := e.DB.P.NO / 100
	if width < 1 {
		width = 1
	}
	n := 0
	for i := 0; i < width; i++ {
		oid := root + backend.OID(i)
		if e.DB.Object(oid) == nil {
			continue
		}
		if err := e.DB.Store.Access(oid); err != nil {
			return n, err
		}
		n++
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	return n, nil
}
