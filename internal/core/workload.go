package core

import (
	"fmt"
	"time"

	"ocb/internal/cluster"
	"ocb/internal/lewis"
	"ocb/internal/store"
)

// TxType enumerates OCB's transaction classes (Fig. 3).
type TxType int

// The four OCB transaction types. Set-oriented accesses explore in breadth
// first on all references; navigational accesses are depth first: simple
// traversals on all references, hierarchy traversals always following the
// same reference type, stochastic traversals choosing the next reference at
// random with p(N) = 1/2^N (Markov-chain-like, after Tsangaris & Naughton).
const (
	SetAccess TxType = iota
	SimpleTraversal
	HierarchyTraversal
	StochasticTraversal
	// The generic transaction set of the paper's Section 5 extension —
	// operations initially discarded because they cannot benefit from
	// clustering. Their occurrence probabilities default to 0.
	UpdateOp
	InsertOp
	DeleteOp
	ScanOp
	RangeOp
	NumTxTypes // sentinel
)

// String returns the transaction type name as used in reports.
func (t TxType) String() string {
	switch t {
	case SetAccess:
		return "set"
	case SimpleTraversal:
		return "simple"
	case HierarchyTraversal:
		return "hierarchy"
	case StochasticTraversal:
		return "stochastic"
	case UpdateOp:
		return "update"
	case InsertOp:
		return "insert"
	case DeleteOp:
		return "delete"
	case ScanOp:
		return "scan"
	case RangeOp:
		return "range"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// Transaction is one workload unit: a typed exploration from a root object
// up to a depth, optionally reversed ("ascending" the graphs through
// backward references).
type Transaction struct {
	Type TxType
	Root store.OID
	// Depth bounds the exploration: hops from the root for the traversals,
	// steps for the stochastic walk.
	Depth int
	// RefType is the reference type a hierarchy traversal follows.
	RefType int
	// Reverse makes the transaction follow BackRef links instead of ORef.
	Reverse bool
}

// TxResult reports one executed transaction.
type TxResult struct {
	ObjectsAccessed int
	IOs             uint64
	Duration        time.Duration
}

// Executor runs transactions against a database on behalf of one client,
// feeding the clustering policy's observation phase along the way.
type Executor struct {
	DB *Database
	// Policy receives ObserveLink/ObserveRoot/EndTransaction callbacks;
	// nil means no observation (plain measurement run).
	Policy cluster.Policy
	// Src drives the stochastic traversal's random choices.
	Src *lewis.Source
}

// NewExecutor returns an executor for db feeding policy (may be nil).
func NewExecutor(db *Database, policy cluster.Policy, src *lewis.Source) *Executor {
	return &Executor{DB: db, Policy: policy, Src: src}
}

// mutating reports whether the transaction restructures the in-memory
// object graph (and therefore needs the database's exclusive lock).
func (tx Transaction) mutating() bool {
	return tx.Type == InsertOp || tx.Type == DeleteOp
}

// Exec runs one transaction, returning objects accessed, I/Os charged to
// the transaction class, and wall-clock duration.
//
// Concurrency: read-only transaction types share-lock the database's graph
// lock, so traversals from many clients proceed in parallel; insertions
// and deletions take it exclusively (they restructure Objects, iterators
// and BackRefs). Store-level faulting is internally sharded.
//
// I/O attribution note: the I/O delta is read from the shared disk
// counters, so with CLIENTN > 1 concurrent clients the per-transaction
// figure includes interleaved faults of other clients; global phase totals
// remain exact. With one client the figure is exact (the configuration of
// every experiment in the paper's Section 4).
func (e *Executor) Exec(tx Transaction) (TxResult, error) {
	if tx.mutating() {
		e.DB.mu.Lock()
		defer e.DB.mu.Unlock()
	} else {
		e.DB.mu.RLock()
		defer e.DB.mu.RUnlock()
	}
	before := e.DB.Store.DiskStats()
	start := time.Now()

	// Under the generic workload, deletions may have invalidated the
	// sampled root; an in-range but deleted root resolves onto the live
	// object set. Out-of-range roots remain errors.
	if tx.Type != InsertOp && tx.Type != ScanOp {
		if tx.Root == store.NilOID || int(tx.Root) >= len(e.DB.Objects) {
			return TxResult{}, fmt.Errorf("ocb: bad root %d", tx.Root)
		}
		if e.DB.Objects[tx.Root] == nil {
			root, ok := e.DB.ResolveLive(tx.Root)
			if !ok {
				return TxResult{}, fmt.Errorf("ocb: no live objects left")
			}
			tx.Root = root
		}
	}

	var accessed int
	var err error
	switch tx.Type {
	case SetAccess:
		accessed, err = e.setAccess(tx.Root, tx.Depth, tx.Reverse)
	case SimpleTraversal:
		accessed, err = e.simple(tx.Root, tx.Depth, tx.Reverse)
	case HierarchyTraversal:
		accessed, err = e.hierarchy(tx.Root, tx.Depth, tx.RefType, tx.Reverse)
	case StochasticTraversal:
		accessed, err = e.stochastic(tx.Root, tx.Depth, tx.Reverse)
	case UpdateOp:
		accessed, err = e.update(tx.Root)
	case InsertOp:
		accessed, err = e.insert()
	case DeleteOp:
		accessed, err = e.delete(tx.Root)
	case ScanOp:
		accessed, err = e.scan()
	case RangeOp:
		accessed, err = e.rangeLookup(tx.Root)
	default:
		return TxResult{}, fmt.Errorf("ocb: unknown transaction type %v", tx.Type)
	}
	if err != nil {
		return TxResult{}, err
	}
	if e.Policy != nil {
		e.Policy.EndTransaction()
	}

	after := e.DB.Store.DiskStats()
	return TxResult{
		ObjectsAccessed: accessed,
		IOs:             after.TransactionIOs() - before.TransactionIOs(),
		Duration:        time.Since(start),
	}, nil
}

// visit faults the object and notifies the policy of the crossing from
// src (NilOID for roots).
func (e *Executor) visit(from, to store.OID) error {
	if err := e.DB.Store.Access(to); err != nil {
		return err
	}
	if e.Policy != nil {
		if from == store.NilOID {
			e.Policy.ObserveRoot(to)
		} else {
			e.Policy.ObserveLink(from, to)
		}
	}
	return nil
}

// successors returns the references leaving obj: its non-NIL ORef slots,
// or its BackRef list when reversed.
func (e *Executor) successors(obj *Object, reverse bool) []store.OID {
	if reverse {
		return obj.BackRef
	}
	out := make([]store.OID, 0, len(obj.ORef))
	for _, r := range obj.ORef {
		if r != store.NilOID {
			out = append(out, r)
		}
	}
	return out
}

// setAccess is the set-oriented access: breadth-first on all the
// references, up to depth hops, with set semantics (each object accessed
// once — the breadth-first result is a set of qualifying objects).
func (e *Executor) setAccess(root store.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	seen := map[store.OID]bool{root: true}
	if err := e.visit(store.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	frontier := []store.OID{root}
	for level := 0; level < depth && len(frontier) > 0; level++ {
		var next []store.OID
		for _, oid := range frontier {
			obj := e.DB.Object(oid)
			for _, succ := range e.successors(obj, reverse) {
				if seen[succ] {
					continue
				}
				seen[succ] = true
				if err := e.visit(oid, succ); err != nil {
					return accessed, err
				}
				accessed++
				next = append(next, succ)
			}
		}
		frontier = next
	}
	return accessed, nil
}

// simple is the simple traversal: depth-first on all the references up to
// depth hops, duplicates allowed (as in OO1's part tree exploration).
func (e *Executor) simple(root store.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(store.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	var dfs func(oid store.OID, remaining int) error
	dfs = func(oid store.OID, remaining int) error {
		if remaining == 0 {
			return nil
		}
		obj := e.DB.Object(oid)
		for _, succ := range e.successors(obj, reverse) {
			if err := e.visit(oid, succ); err != nil {
				return err
			}
			accessed++
			if err := dfs(succ, remaining-1); err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(root, depth)
	return accessed, err
}

// hierarchy is the hierarchy traversal: depth-first always following the
// same type of reference.
func (e *Executor) hierarchy(root store.OID, depth, refType int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(store.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	var dfs func(oid store.OID, remaining int) error
	dfs = func(oid store.OID, remaining int) error {
		if remaining == 0 {
			return nil
		}
		obj := e.DB.Object(oid)
		for _, succ := range e.typedSuccessors(obj, refType, reverse) {
			if err := e.visit(oid, succ); err != nil {
				return err
			}
			accessed++
			if err := dfs(succ, remaining-1); err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(root, depth)
	return accessed, err
}

// typedSuccessors returns the references of obj whose declared type is
// refType. Reversed, it selects the BackRef entries whose owning object
// points back at obj through a reference of that type.
func (e *Executor) typedSuccessors(obj *Object, refType int, reverse bool) []store.OID {
	class := e.DB.Schema.Class(obj.Class)
	if !reverse {
		out := make([]store.OID, 0, len(obj.ORef))
		for k, r := range obj.ORef {
			if r != store.NilOID && class.TRef[k] == refType {
				out = append(out, r)
			}
		}
		return out
	}
	out := make([]store.OID, 0, len(obj.BackRef))
	for _, from := range obj.BackRef {
		fobj := e.DB.Object(from)
		fclass := e.DB.Schema.Class(fobj.Class)
		for k, r := range fobj.ORef {
			if r == obj.OID && fclass.TRef[k] == refType {
				out = append(out, from)
				break
			}
		}
	}
	return out
}

// stochastic is the stochastic traversal: a random walk of depth steps
// where reference number N is crossed with probability p(N) = 1/2^N,
// approaching the Markov-chain access patterns of real queries
// (Tsangaris & Naughton). The geometric draw is folded modulo the number
// of available references so that every step makes progress; the walk
// stops early at objects without references.
func (e *Executor) stochastic(root store.OID, depth int, reverse bool) (int, error) {
	if e.DB.Object(root) == nil {
		return 0, fmt.Errorf("ocb: bad root %d", root)
	}
	if err := e.visit(store.NilOID, root); err != nil {
		return 0, err
	}
	accessed := 1
	cur := root
	for step := 0; step < depth; step++ {
		obj := e.DB.Object(cur)
		succ := e.successors(obj, reverse)
		if len(succ) == 0 {
			break
		}
		// Geometric draw: P(N = k) = 1/2^k, k >= 1.
		n := 1
		for e.Src.Bernoulli(0.5) {
			n++
		}
		next := succ[(n-1)%len(succ)]
		if err := e.visit(cur, next); err != nil {
			return accessed, err
		}
		accessed++
		cur = next
	}
	return accessed, nil
}

// update modifies one object in place and commits — the update operation
// the clustering-oriented workload excludes (§3.3) and the generic
// extension (§5) restores.
func (e *Executor) update(root store.OID) (int, error) {
	if err := e.DB.Store.Update(root); err != nil {
		return 0, err
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	return 1, e.DB.Store.Commit()
}

// insert creates one new object per the generation rules and commits.
func (e *Executor) insert() (int, error) {
	obj, err := e.DB.InsertObject(e.Src)
	if err != nil {
		return 0, err
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(obj.OID)
	}
	// The new object plus each referenced object touched for BackRef
	// maintenance.
	n := 1
	for _, r := range obj.ORef {
		if r != store.NilOID {
			n++
		}
	}
	return n, nil
}

// delete removes the root object, repairing the graph, and commits.
func (e *Executor) delete(root store.OID) (int, error) {
	obj := e.DB.Object(root)
	touched := 1 + len(obj.BackRef)
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	if err := e.DB.DeleteObject(root); err != nil {
		return 0, err
	}
	return touched, nil
}

// scan visits every live object in OID order — HyperModel's Sequential
// Scan, excluded from the clustering workload and restored by §5.
func (e *Executor) scan() (int, error) {
	n := 0
	for _, oid := range e.DB.LiveOIDs() {
		if err := e.DB.Store.Access(oid); err != nil {
			return n, err
		}
		n++
	}
	if e.Policy != nil && n > 0 {
		e.Policy.ObserveRoot(e.DB.LiveOIDs()[0])
	}
	return n, nil
}

// rangeLookup visits the live objects whose OID falls within a 1%-of-NO
// window starting at the root — HyperModel's Range Lookup analogue over
// the object identifier attribute.
func (e *Executor) rangeLookup(root store.OID) (int, error) {
	width := e.DB.P.NO / 100
	if width < 1 {
		width = 1
	}
	n := 0
	for i := 0; i < width; i++ {
		oid := root + store.OID(i)
		if e.DB.Object(oid) == nil {
			continue
		}
		if err := e.DB.Store.Access(oid); err != nil {
			return n, err
		}
		n++
	}
	if e.Policy != nil {
		e.Policy.ObserveRoot(root)
	}
	return n, nil
}
