//go:build race

package core

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops a fraction of Puts under -race, so allocation-count
// assertions are skipped.
const raceEnabled = true
