package core

import (
	"fmt"
	"time"

	"ocb/internal/backend"
)

// DefaultScalabilityClients is the client sweep of the scalability
// harness: powers of two through 16, the region where the paper's
// era-hardware arguments about multi-user mode play out.
var DefaultScalabilityClients = []int{1, 2, 4, 8, 16}

// ScalabilityOptions parameterizes RunScalability.
type ScalabilityOptions struct {
	// Clients is the CLIENTN sweep; default DefaultScalabilityClients.
	Clients []int
	// TxPerClient is the measured transactions per client at each point;
	// default 100.
	TxPerClient int
	// Think is the per-transaction think time (0 = saturation: clients
	// issue back to back).
	Think time.Duration
	// OpenLoop selects open-loop pacing for Think (see Params.OpenLoop).
	OpenLoop bool
	// Seed drives the transaction streams; every point replays the same
	// per-client stream family so points differ only in concurrency.
	// Default 1 (0 means default).
	Seed int64
	// Shards overrides the store's lock-sharding degree for the sweep;
	// 0 picks 2x the largest client count (rounded to a power of two).
	Shards int
	// KeepCache skips the cold restart before each point; by default the
	// cache is dropped so points start from identical store state.
	KeepCache bool
}

// ScalabilityPoint is one row of a scalability sweep.
type ScalabilityPoint struct {
	Clients      int
	Transactions int64
	Duration     time.Duration
	// Throughput is transactions per second of wall clock.
	Throughput float64
	// Speedup is Throughput relative to the 1-client point (or the first
	// point when the sweep does not include 1).
	Speedup float64
	// MeanIOsPerTx is the exact phase headline (DiskDelta / Transactions).
	MeanIOsPerTx float64
	// P50, P95 and P99 are response-time quantiles in microseconds, from
	// the phase's reservoir samples.
	P50, P95, P99 float64
	// Metrics is the full phase aggregate, including per-type counts and
	// per-type latency reservoirs (Metrics.PerType[t].ResponseQ).
	Metrics *PhaseMetrics
}

// ScalabilityResult is a full sweep over one shared database.
type ScalabilityResult struct {
	Points []ScalabilityPoint
	// Shards is the store lock-sharding degree the sweep ran with.
	Shards int
}

// Speedup returns the speedup of the point measured at n clients, or 0
// when the sweep has no such point.
func (r *ScalabilityResult) Speedup(n int) float64 {
	for _, pt := range r.Points {
		if pt.Clients == n {
			return pt.Speedup
		}
	}
	return 0
}

// RunScalability sweeps CLIENTN over one shared database and store,
// measuring throughput, speedup versus one client, exact per-phase I/O and
// response-time quantiles at every point. The store is resharded for the
// sweep (multi-client points would otherwise serialize on a single-shard
// store built for CLIENTN = 1); each point replays the same per-client
// transaction streams from a cold cache, so the only variable across rows
// is concurrency.
func RunScalability(db *Database, o ScalabilityOptions) (*ScalabilityResult, error) {
	clients := o.Clients
	if len(clients) == 0 {
		clients = DefaultScalabilityClients
	}
	txPerClient := o.TxPerClient
	if txPerClient <= 0 {
		txPerClient = 100
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	maxClients := 0
	for _, c := range clients {
		if c < 1 {
			return nil, fmt.Errorf("ocb: scalability sweep with %d clients", c)
		}
		if c > maxClients {
			maxClients = c
		}
	}
	shards := o.Shards
	if shards <= 0 {
		shards = 1
		for shards < 2*maxClients {
			shards *= 2
		}
	}
	// Resharding is a backend capability: backends whose concurrency does
	// not come from lock sharding (flatmem) run the sweep as they are.
	if rel, ok := db.Store.(backend.Resharder); ok {
		if err := rel.Reshard(shards); err != nil {
			return nil, err
		}
		// Report the degree actually in effect — the store may round the
		// request (to a power of two), and the table note cites it.
		shards = rel.Shards()
	} else {
		shards = 1
	}

	// Restore the database's own protocol parameters afterwards; the sweep
	// borrows ClientN/Think/OpenLoop from the options.
	saved := db.P
	defer func() { db.P = saved }()
	db.P.Think = o.Think
	db.P.OpenLoop = o.OpenLoop

	res := &ScalabilityResult{Shards: shards}
	for _, c := range clients {
		db.P.ClientN = c
		if !o.KeepCache {
			db.Store.DropCache()
		}
		r := NewRunner(db, nil)
		m, err := r.RunPhase(fmt.Sprintf("scale-%d", c), txPerClient, seed)
		if err != nil {
			return nil, fmt.Errorf("ocb: scalability at %d clients: %w", c, err)
		}
		pt := ScalabilityPoint{
			Clients:      c,
			Transactions: m.Transactions,
			Duration:     m.Duration,
			MeanIOsPerTx: m.MeanIOsPerTx(),
			P50:          m.Global.ResponseQ.Median(),
			P95:          m.Global.ResponseQ.P95(),
			P99:          m.Global.ResponseQ.P99(),
			Metrics:      m,
		}
		if s := m.Duration.Seconds(); s > 0 {
			pt.Throughput = float64(m.Transactions) / s
		}
		res.Points = append(res.Points, pt)
	}
	// Speedups are relative to the 1-client point wherever it appears in
	// the sweep (the first point when the sweep has none), so every row
	// shares one baseline.
	base := res.Points[0].Throughput
	for _, pt := range res.Points {
		if pt.Clients == 1 {
			base = pt.Throughput
			break
		}
	}
	if base > 0 {
		for i := range res.Points {
			res.Points[i].Speedup = res.Points[i].Throughput / base
		}
	}
	return res, nil
}
