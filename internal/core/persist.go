package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

// persisted is the on-wire form of a generated database: the parameters
// (including the distribution values, registered with gob below), the
// schema, the object graph, and the store image carrying placement.
// Classes and Objects are stored without their nil zeroth entries (gob
// rejects nil pointers inside slices).
type persisted struct {
	Params Params
	// Classes is Schema.Classes without the nil zeroth entry.
	Classes []*Class
	// Objects holds only live objects (deleted slots are nil in memory
	// and gob rejects nil pointers inside slices); MaxOID restores the
	// slice extent.
	Objects []*Object
	MaxOID  int
	// Backend is the driver the image was captured from (and must be
	// restored with); Image is its serialized durable state.
	Backend string
	Image   *backend.Image
}

func init() {
	// The Params distributions are interface-typed; gob needs the concrete
	// types announced once.
	gob.Register(lewis.Uniform{})
	gob.Register(lewis.Constant{})
	gob.Register(&lewis.RoundRobin{})
	gob.Register(&lewis.Zipf{})
	gob.Register(lewis.Normal{})
	gob.Register(lewis.NegExp{})
	gob.Register(lewis.RefZone{})
	gob.Register(lewis.SelfSimilar{})
}

// Save serializes the database — schema, object graph and physical
// placement — so an expensive generation can be reused across benchmark
// processes. Dirty pages are flushed as part of imaging. Saving requires
// the backend.Snapshotter capability; on backends without it (flatmem)
// the error wraps backend.ErrNotSupported.
func (db *Database) Save(w io.Writer) error {
	snap, ok := db.Store.(backend.Snapshotter)
	if !ok {
		return fmt.Errorf("ocb: saving backend %q: %w: persistence", db.P.backendName(), backend.ErrNotSupported)
	}
	img, err := snap.Image()
	if err != nil {
		return fmt.Errorf("ocb: imaging store: %w", err)
	}
	live := make([]*Object, 0, db.NumLive())
	for i := 1; i < len(db.Objects); i++ {
		if db.Objects[i] != nil {
			live = append(live, db.Objects[i])
		}
	}
	enc := gob.NewEncoder(w)
	return enc.Encode(persisted{
		Params:  db.P,
		Classes: db.Schema.Classes[1:],
		Objects: live,
		MaxOID:  len(db.Objects) - 1,
		Backend: db.P.backendName(),
		Image:   img,
	})
}

// Load rebuilds a database saved with Save. The restored store starts
// with a cold cache and zeroed statistics; the object graph, schema and
// placement are bit-identical to the saved ones.
func Load(r io.Reader) (*Database, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ocb: decoding database: %w", err)
	}
	st, err := backend.Restore(p.Backend, p.Image)
	if err != nil {
		return nil, fmt.Errorf("ocb: restoring store: %w", err)
	}
	objects := make([]*Object, p.MaxOID+1)
	for _, o := range p.Objects {
		if o == nil || int(o.OID) >= len(objects) {
			return nil, fmt.Errorf("ocb: corrupt object table in saved database")
		}
		objects[o.OID] = o
	}
	db := &Database{
		P:       p.Params,
		Schema:  &Schema{Classes: append([]*Class{nil}, p.Classes...)},
		Objects: objects,
		Store:   st,
	}
	db.initLive()
	if err := CheckDatabase(db); err != nil {
		return nil, fmt.Errorf("ocb: loaded database failed integrity check: %w", err)
	}
	return db, nil
}
