package core

import (
	"testing"
	"testing/quick"

	"ocb/internal/lewis"
)

// smallParams returns fast-to-generate parameters for unit tests.
func smallParams() Params {
	p := DefaultParams()
	p.NC = 10
	p.SupClass = 10
	p.NO = 500
	p.SupRef = 500
	p.BufferPages = 16
	p.ColdN = 20
	p.HotN = 50
	return p
}

func TestGenerateSchemaShape(t *testing.T) {
	p := smallParams()
	s, err := GenerateSchema(p, lewis.New(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(p, s); err != nil {
		t.Fatal(err)
	}
	if s.NC() != p.NC {
		t.Fatalf("NC = %d", s.NC())
	}
	for i := 1; i <= p.NC; i++ {
		c := s.Class(i)
		if c.MaxNRef != p.MaxNRef || c.BaseSize != p.BaseSize {
			t.Fatalf("class %d params wrong: %+v", i, c)
		}
		if c.DiskSize() != c.InstanceSize+RefSlotBytes*c.MaxNRef {
			t.Fatalf("DiskSize inconsistent for class %d", i)
		}
	}
	if s.Class(0) != nil || s.Class(p.NC+1) != nil {
		t.Fatal("out-of-range Class() must be nil")
	}
}

func TestSchemaDeterminism(t *testing.T) {
	p := smallParams()
	a, err := GenerateSchema(p, lewis.New(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchema(p, lewis.New(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= p.NC; i++ {
		ca, cb := a.Class(i), b.Class(i)
		if ca.InstanceSize != cb.InstanceSize {
			t.Fatalf("class %d InstanceSize differs: %d vs %d", i, ca.InstanceSize, cb.InstanceSize)
		}
		for j := 0; j < ca.MaxNRef; j++ {
			if ca.TRef[j] != cb.TRef[j] || ca.CRef[j] != cb.CRef[j] {
				t.Fatalf("class %d ref %d differs", i, j)
			}
		}
	}
}

// TestSchemaAcyclicityProperty regenerates schemas under random seeds and
// class counts and checks the invariants CheckSchema encodes — notably
// that every hierarchy type stays acyclic after the consistency step.
func TestSchemaAcyclicityProperty(t *testing.T) {
	f := func(seed int64, nc uint8) bool {
		p := smallParams()
		p.NC = int(nc%30) + 1
		p.SupClass = p.NC
		p.Seed = seed
		s, err := GenerateSchema(p, lewis.New(seed))
		if err != nil {
			return false
		}
		return CheckSchema(p, s) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInheritancePropagation pins the InstanceSize computation on a
// hand-built 3-class chain: 1 --inh--> 2 --inh--> 3 means 2 and 3 are
// subclasses of 1, and 3 a subclass of 2, so sizes accumulate down the
// chain: size(2) += BASE(1); size(3) += BASE(1) + BASE(2).
func TestInheritancePropagation(t *testing.T) {
	p := DefaultParams()
	p.NC = 3
	p.SupClass = 3
	p.NO = 10
	p.SupRef = 10
	p.MaxNRef = 1
	p.NRefT = 1
	p.NumAcyclicTypes = 1
	p.BaseSizePerClass = []int{0, 100, 10, 1}
	// DIST1 constant -> type 1 (inheritance). DIST2 must build the chain
	// 1->2, 2->3, 3->X(suppressed). A Constant offset of +1 relative to lo
	// gives CRef = lo+1 = 2 for every class... we need i+1 per class, so
	// use a RoundRobin starting at lo=1: draws 1, 2, 3 for classes 1,2,3 —
	// giving 1->1 (suppressed self-loop), 2->2 (suppressed), 3->3
	// (suppressed). Not the chain either. Easiest deterministic chain:
	// generate, then verify by construction below instead.
	s := &Schema{Classes: make([]*Class, 4)}
	for i := 1; i <= 3; i++ {
		s.Classes[i] = &Class{
			ID: i, MaxNRef: 1, BaseSize: p.BaseSizeOf(i), InstanceSize: p.BaseSizeOf(i),
			TRef: []int{1}, CRef: []int{0},
		}
	}
	s.Classes[1].CRef[0] = 2
	s.Classes[2].CRef[0] = 3
	// Run only the inheritance propagation by replaying the algorithm on
	// this fixed schema through a tiny helper: reuse GenerateSchema's rules
	// by checking the real generator below, and verify this fixture by the
	// documented formula.
	propagateInheritance(p, s)
	if got := s.Classes[1].InstanceSize; got != 100 {
		t.Fatalf("class 1 size = %d, want 100 (no superclass)", got)
	}
	if got := s.Classes[2].InstanceSize; got != 110 {
		t.Fatalf("class 2 size = %d, want 10+100", got)
	}
	if got := s.Classes[3].InstanceSize; got != 111 {
		t.Fatalf("class 3 size = %d, want 1+100+10", got)
	}
}

func TestNilClassReferences(t *testing.T) {
	p := smallParams()
	p.InfClass = 0 // NIL references possible
	s, err := GenerateSchema(p, lewis.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(p, s); err != nil {
		t.Fatal(err)
	}
	nils := 0
	for i := 1; i <= p.NC; i++ {
		for _, c := range s.Class(i).CRef {
			if c == NilClass {
				nils++
			}
		}
	}
	if nils == 0 {
		t.Fatal("INFCLASS=0 produced no NIL class references")
	}
}

func TestSelfLoopsSuppressedForAcyclicTypes(t *testing.T) {
	p := DefaultParams()
	p.NC = 1
	p.SupClass = 1
	p.NO = 10
	p.SupRef = 10
	p.NRefT = 2
	p.NumAcyclicTypes = 2 // every type acyclic; all refs target class 1
	s, err := GenerateSchema(p, lewis.New(3))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Class(1)
	for j, cr := range c.CRef {
		if cr != NilClass {
			t.Fatalf("ref %d survived as a self-loop of acyclic type %d", j, c.TRef[j])
		}
	}
}

func TestCheckSchemaCatchesCorruption(t *testing.T) {
	p := smallParams()
	s, err := GenerateSchema(p, lewis.New(p.Seed))
	if err != nil {
		t.Fatal(err)
	}
	s.Class(3).TRef[0] = 99
	if err := CheckSchema(p, s); err == nil {
		t.Fatal("bad TRef accepted")
	}
	s2, _ := GenerateSchema(p, lewis.New(p.Seed))
	s2.Class(3).CRef[0] = 77
	if err := CheckSchema(p, s2); err == nil {
		t.Fatal("bad CRef accepted")
	}
	s3, _ := GenerateSchema(p, lewis.New(p.Seed))
	s3.Class(2).InstanceSize = 1
	if err := CheckSchema(p, s3); err == nil {
		t.Fatal("shrunken InstanceSize accepted")
	}
	// Force a cycle in an acyclic type.
	s4, _ := GenerateSchema(p, lewis.New(p.Seed))
	s4.Class(1).TRef[0] = 1
	s4.Class(1).CRef[0] = 2
	s4.Class(2).TRef[0] = 1
	s4.Class(2).CRef[0] = 1
	if err := CheckSchema(p, s4); err == nil {
		t.Fatal("cycle in inheritance graph accepted")
	}
}

func TestHasCycleHelper(t *testing.T) {
	adj := [][]int{nil, {2}, {3}, nil}
	if hasCycle(adj, 3) {
		t.Fatal("chain misreported as cyclic")
	}
	adj[3] = []int{1}
	if !hasCycle(adj, 3) {
		t.Fatal("3-cycle not detected")
	}
	if hasCycle([][]int{nil}, 0) {
		t.Fatal("empty graph cyclic")
	}
}

func TestReachableHelper(t *testing.T) {
	adj := [][]int{nil, {2, 3}, {4}, nil, nil}
	if !reachable(adj, 1, 4) {
		t.Fatal("1 -> 4 not found")
	}
	if reachable(adj, 3, 1) {
		t.Fatal("phantom path 3 -> 1")
	}
	if !reachable(adj, 2, 2) {
		t.Fatal("self must be reachable")
	}
}
