package core

import (
	"testing"
	"time"

	"ocb/internal/backend"
)

// These tests exercise the multi-client protocol under the race detector
// (the CI race shard runs this package with -race) and pin down which
// merged PhaseMetrics are schedule-independent: transaction counts,
// per-type counts, per-transaction object counts and the phase's exact
// disk-counter delta must be identical across repeated runs with the same
// seed, no matter how the scheduler interleaves the clients.

// raceParams is a small database under a buffer big enough that no pool
// shard ever evicts: every page faults at most once per phase, which is
// what makes the phase's disk delta independent of client interleaving.
func raceParams(clients int) Params {
	p := DefaultParams()
	p.NO = 400
	p.SupRef = 400
	p.BufferPages = 2048
	p.StoreShards = 8
	p.ClientN = clients
	return p
}

// runOnce replays one phase from a cold cache with zeroed counters.
func runOnce(t *testing.T, db *Database, txPerClient int, seed int64) *PhaseMetrics {
	t.Helper()
	db.Store.DropCache()
	db.Store.ResetStats()
	m, err := NewRunner(db, nil).RunPhase("race", txPerClient, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunPhaseConcurrentScheduleIndependent(t *testing.T) {
	for _, clients := range []int{2, 8} {
		p := raceParams(clients)
		db, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		const txPerClient = 40
		m1 := runOnce(t, db, txPerClient, 777)
		accessed1 := db.Store.Stats().ObjectsAccessed
		m2 := runOnce(t, db, txPerClient, 777)
		accessed2 := db.Store.Stats().ObjectsAccessed

		if m1.Transactions != int64(clients*txPerClient) {
			t.Fatalf("clients=%d: %d transactions, want %d", clients, m1.Transactions, clients*txPerClient)
		}
		if m1.Transactions != m2.Transactions {
			t.Errorf("clients=%d: transaction counts differ: %d vs %d", clients, m1.Transactions, m2.Transactions)
		}
		for tt := range m1.PerType {
			if m1.PerType[tt].Count != m2.PerType[tt].Count {
				t.Errorf("clients=%d: type %v count differs: %d vs %d",
					clients, TxType(tt), m1.PerType[tt].Count, m2.PerType[tt].Count)
			}
		}
		if m1.Global.Count != m2.Global.Count {
			t.Errorf("clients=%d: global count differs: %d vs %d", clients, m1.Global.Count, m2.Global.Count)
		}
		// Objects accessed per transaction are determined by the traversal
		// streams, so the merged welford is bitwise reproducible.
		if m1.Global.Objects.Mean() != m2.Global.Objects.Mean() ||
			m1.Global.Objects.N() != m2.Global.Objects.N() {
			t.Errorf("clients=%d: objects-per-tx welford differs: %v/%d vs %v/%d", clients,
				m1.Global.Objects.Mean(), m1.Global.Objects.N(),
				m2.Global.Objects.Mean(), m2.Global.Objects.N())
		}
		if accessed1 != accessed2 {
			t.Errorf("clients=%d: store object-access totals differ: %d vs %d", clients, accessed1, accessed2)
		}
		// The disk delta is the exact phase total: with no evictions every
		// distinct page faults exactly once, so the counter-wise delta is
		// schedule-independent.
		if m1.DiskDelta != m2.DiskDelta {
			t.Errorf("clients=%d: disk deltas differ: %+v vs %+v", clients, m1.DiskDelta, m2.DiskDelta)
		}
		if m1.DiskDelta.TotalWrites() != 0 {
			t.Errorf("clients=%d: read-only phase wrote %d pages", clients, m1.DiskDelta.TotalWrites())
		}
		if pool := db.Store.Stats().Pool; pool.Evictions != 0 {
			t.Errorf("clients=%d: geometry evicted %d pages; the exactness argument needs none", clients, pool.Evictions)
		}
	}
}

// TestRunPhaseConcurrentMatchesSerial pins the concurrency refactor to the
// protocol semantics: the same seed produces the same per-client streams
// whether the clients run concurrently or the phase runs with one client
// per seed offset, so the merged per-type counts must match.
func TestRunPhaseConcurrentMatchesSerial(t *testing.T) {
	const clients, txPerClient = 4, 30
	db, err := Generate(raceParams(clients))
	if err != nil {
		t.Fatal(err)
	}
	conc := runOnce(t, db, txPerClient, 555)

	serial := &PhaseMetrics{Name: "serial"}
	sp := raceParams(1)
	sdb, err := Generate(sp)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		sdb.Store.DropCache()
		// Client c of a concurrent phase draws from seed + c*104729.
		m, err := NewRunner(sdb, nil).RunPhase("serial", txPerClient, 555+int64(c)*104729)
		if err != nil {
			t.Fatal(err)
		}
		serial.Transactions += m.Transactions
		for tt := range serial.PerType {
			serial.PerType[tt].Count += m.PerType[tt].Count
		}
	}
	if conc.Transactions != serial.Transactions {
		t.Fatalf("concurrent %d transactions vs serial %d", conc.Transactions, serial.Transactions)
	}
	for tt := range conc.PerType {
		if conc.PerType[tt].Count != serial.PerType[tt].Count {
			t.Errorf("type %v: concurrent count %d vs serial %d",
				TxType(tt), conc.PerType[tt].Count, serial.PerType[tt].Count)
		}
	}
}

// TestRunPhaseConcurrentGenericWorkload runs the Section 5 mutating
// workload (insertions, deletions, updates, scans) with concurrent
// clients: the database graph lock serializes structural mutations, and
// the database must come out of the phase internally consistent.
func TestRunPhaseConcurrentGenericWorkload(t *testing.T) {
	p := GenericParams()
	p.NO = 300
	p.SupRef = 300
	p.BufferPages = 1024
	p.StoreShards = 8
	p.ClientN = 4
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(db, nil).RunPhase("generic", 25, 909); err != nil {
		t.Fatal(err)
	}
	if err := CheckDatabase(db); err != nil {
		t.Fatalf("database inconsistent after concurrent mutating phase: %v", err)
	}
	if err := backend.CheckIntegrity(db.Store); err != nil {
		t.Fatalf("store inconsistent after concurrent mutating phase: %v", err)
	}
}

// TestOpenLoopPacing checks the open-loop arrival schedule: a phase of n
// transactions with think time T takes at least (n-1)*T of wall clock but
// does not stack service time on top of the schedule the way the closed
// loop does.
func TestOpenLoopPacing(t *testing.T) {
	p := raceParams(1)
	p.Think = 2 * time.Millisecond
	p.OpenLoop = true
	db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	m, err := NewRunner(db, nil).RunPhase("open", n, 11)
	if err != nil {
		t.Fatal(err)
	}
	if min := time.Duration(n-1) * p.Think; m.Duration < min {
		t.Fatalf("open-loop phase of %d tx finished in %v, schedule floor is %v", n, m.Duration, min)
	}
}
