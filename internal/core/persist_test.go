package core

import (
	"bytes"
	"strings"
	"testing"

	"ocb/internal/backend"
	"ocb/internal/lewis"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := smallParams()
	p.NO = 300
	p.SupRef = 300
	orig := MustGenerate(p)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NO() != orig.NO() {
		t.Fatalf("NO = %d, want %d", loaded.NO(), orig.NO())
	}
	// Schema identical.
	for i := 1; i <= p.NC; i++ {
		a, b := orig.Schema.Class(i), loaded.Schema.Class(i)
		if a.InstanceSize != b.InstanceSize || a.MaxNRef != b.MaxNRef {
			t.Fatalf("class %d differs after load", i)
		}
		for j := range a.TRef {
			if a.TRef[j] != b.TRef[j] || a.CRef[j] != b.CRef[j] {
				t.Fatalf("class %d ref %d differs", i, j)
			}
		}
		if len(a.Iterator) != len(b.Iterator) {
			t.Fatalf("class %d iterator differs", i)
		}
	}
	// Object graph identical.
	for i := 1; i <= p.NO; i++ {
		a, b := orig.Objects[i], loaded.Objects[i]
		if a.Class != b.Class || len(a.ORef) != len(b.ORef) {
			t.Fatalf("object %d differs", i)
		}
		for k := range a.ORef {
			if a.ORef[k] != b.ORef[k] {
				t.Fatalf("object %d ref %d differs", i, k)
			}
		}
	}
	// Placement identical.
	for i := 1; i <= p.NO; i++ {
		pa, _ := orig.Store.(backend.Placer).PageOf(backend.OID(i))
		pb, _ := loaded.Store.(backend.Placer).PageOf(backend.OID(i))
		if pa != pb {
			t.Fatalf("object %d placed on %d, was %d", i, pb, pa)
		}
	}
	// The loaded store works: run a workload phase on it.
	r := NewRunner(loaded, nil)
	if _, err := r.RunPhase("post-load", 20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStartsCold(t *testing.T) {
	p := smallParams()
	p.NO = 200
	p.SupRef = 200
	orig := MustGenerate(p)
	// Warm the original's cache.
	if err := orig.Store.Access(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.Store.Stats()
	if st.Disk.Total() != 0 || st.Pool.Hits+st.Pool.Misses != 0 {
		t.Fatalf("loaded store has non-zero counters: %+v", st)
	}
	// First access faults (cold cache).
	if err := loaded.Store.Access(1); err != nil {
		t.Fatal(err)
	}
	if loaded.Store.Stats().Pool.Misses != 1 {
		t.Fatal("loaded store was not cold")
	}
}

func TestSaveLoadPreservesDistributions(t *testing.T) {
	p := CluBParams() // exercises constant, roundrobin and refzone
	p.NO = 200
	p.SupRef = 200
	p.Dist4 = lewis.RefZone{Zone: 10}
	db := MustGenerate(p)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.P.Dist4.Name() != "refzone:10" {
		t.Fatalf("Dist4 = %s", loaded.P.Dist4.Name())
	}
	if loaded.P.Dist3.Name() != "roundrobin" {
		t.Fatalf("Dist3 = %s", loaded.P.Dist3.Name())
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadAfterRelocation(t *testing.T) {
	// Saving after a clustering reorganization must persist the new
	// placement, not the creation order.
	p := smallParams()
	p.NO = 200
	p.SupRef = 200
	db := MustGenerate(p)
	cluster := []backend.OID{5, 100, 150}
	if _, err := db.Store.(backend.Relocator).Relocate([][]backend.OID{cluster}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := loaded.Store.(backend.Placer).PageOf(5)
	p1, _ := loaded.Store.(backend.Placer).PageOf(100)
	p2, _ := loaded.Store.(backend.Placer).PageOf(150)
	if p0 != p1 || p1 != p2 {
		t.Fatal("relocated placement lost on save/load")
	}
}
