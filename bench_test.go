// Package ocb_test hosts the repository-level benchmark suite: one
// testing.B benchmark per table and figure of the paper's evaluation
// (regenerating the artefact through internal/exp), plus micro-benchmarks
// for the substrates the results rest on.
//
// Table/figure benches run the Quick geometry so `go test -bench=.` stays
// tractable; cmd/ocb-experiments (without -quick) regenerates the
// full-scale numbers recorded in EXPERIMENTS.md.
package ocb_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ocb/internal/backend"
	_ "ocb/internal/backend/all"
	"ocb/internal/cluster"
	"ocb/internal/core"
	"ocb/internal/dstc"
	"ocb/internal/exp"
	"ocb/internal/lewis"
	"ocb/internal/oo1"
	"ocb/internal/report"
	"ocb/internal/store"
)

var quick = exp.Config{Quick: true}

// benchTable runs one experiment per iteration and defeats dead-code
// elimination through the row count.
func benchTable(b *testing.B, run func(exp.Config) (*report.Table, error)) {
	b.Helper()
	rows := 0
	for i := 0; i < b.N; i++ {
		t, err := run(quick)
		if err != nil {
			b.Fatal(err)
		}
		rows += t.NumRows()
	}
	if rows == 0 {
		b.Fatal("no rows produced")
	}
}

// BenchmarkTable1_DatabaseParams regenerates paper Table 1.
func BenchmarkTable1_DatabaseParams(b *testing.B) { benchTable(b, exp.Table1) }

// BenchmarkTable2_WorkloadParams regenerates paper Table 2.
func BenchmarkTable2_WorkloadParams(b *testing.B) { benchTable(b, exp.Table2) }

// BenchmarkTable3_CluBApproximation regenerates paper Table 3.
func BenchmarkTable3_CluBApproximation(b *testing.B) { benchTable(b, exp.Table3) }

// BenchmarkFig4_CreationTime regenerates paper Figure 4 (database average
// creation time vs size and class count).
func BenchmarkFig4_CreationTime(b *testing.B) { benchTable(b, exp.Fig4) }

// BenchmarkTable4_DSTCGain regenerates paper Table 4 (DSTC measured with
// DSTC-CluB and with OCB approximating CluB).
func BenchmarkTable4_DSTCGain(b *testing.B) { benchTable(b, exp.Table4) }

// BenchmarkTable5_MixedWorkload regenerates paper Table 5 (DSTC under
// OCB's default workload).
func BenchmarkTable5_MixedWorkload(b *testing.B) { benchTable(b, exp.Table5) }

// BenchmarkAblation benchmarks every DESIGN.md ablation experiment.
func BenchmarkAblation(b *testing.B) {
	for _, e := range []struct {
		name string
		run  func(exp.Config) (*report.Table, error)
	}{
		{"Policies", exp.Policies},
		{"BufferSweep", exp.BufferSweep},
		{"MultiClient", exp.MultiClient},
		{"Reverse", exp.Reverse},
		{"DSTCSensitivity", exp.DSTCSensitivity},
		{"GenericWorkload", exp.GenericWorkload},
		{"RootSkew", exp.RootSkew},
		{"SimulatedTestbed", exp.SimulatedTestbed},
		{"TypeBreakdown", exp.TypeBreakdown},
	} {
		b.Run(e.name, func(b *testing.B) { benchTable(b, e.run) })
	}
}

// BenchmarkRelatedWork benchmarks the three comparator benchmark suites.
func BenchmarkRelatedWork(b *testing.B) {
	for _, e := range []struct {
		name string
		run  func(exp.Config) (*report.Table, error)
	}{
		{"OO1", exp.OO1Suite},
		{"HyperModel", exp.HyperModelSuite},
		{"OO7", exp.OO7Suite},
	} {
		b.Run(e.name, func(b *testing.B) { benchTable(b, e.run) })
	}
}

// BenchmarkGeneration measures raw database generation across schema
// sizes (the quantity Figure 4 plots).
func BenchmarkGeneration(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		nc, no int
	}{
		{"NC1/NO1000", 1, 1000},
		{"NC20/NO1000", 20, 1000},
		{"NC50/NO1000", 50, 1000},
		{"NC20/NO10000", 20, 10000},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := core.DefaultParams()
			p.NC = cfg.nc
			p.SupClass = cfg.nc
			p.NO = cfg.no
			p.SupRef = cfg.no
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Seed = int64(i + 1)
				if _, err := core.Generate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransaction measures one transaction of each OCB type on a
// resident database.
func BenchmarkTransaction(b *testing.B) {
	p := core.DefaultParams()
	p.NO = 5000
	p.SupRef = 5000
	p.BufferPages = 2048 // fully resident: measures CPU cost of navigation
	db, err := core.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, typ := range []core.TxType{
		core.SetAccess, core.SimpleTraversal, core.HierarchyTraversal, core.StochasticTraversal,
	} {
		typ := typ
		b.Run(typ.String(), func(b *testing.B) {
			src := lewis.New(42)
			ex := core.NewExecutor(db, nil, src)
			depth := map[core.TxType]int{
				core.SetAccess: p.SetDepth, core.SimpleTraversal: p.SimDepth,
				core.HierarchyTraversal: p.HieDepth, core.StochasticTraversal: p.StoDepth,
			}[typ]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tx := core.Transaction{
					Type:    typ,
					Root:    backend.OID(src.IntRange(1, p.NO)),
					Depth:   depth,
					RefType: 1 + i%p.NRefT,
				}
				if _, err := ex.Exec(tx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOO1Traversal measures the canonical OO1 depth-7 traversal.
func BenchmarkOO1Traversal(b *testing.B) {
	p := oo1.DefaultParams()
	p.NumParts = 4000
	p.RefZone = 40
	p.BufferPages = 2048
	db, err := oo1.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Traversal(nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReorganize measures the physical reorganization step for DSTC
// and the static baselines.
func BenchmarkReorganize(b *testing.B) {
	build := func() (*core.Database, error) {
		p := core.CluBParams()
		p.NO = 4000
		p.SupRef = 4000
		p.BufferPages = 64
		return core.Generate(p)
	}
	b.Run("dstc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := build()
			if err != nil {
				b.Fatal(err)
			}
			policy := dstc.New(dstc.Params{ObservationPeriod: 1 << 30, MaxUnitBytes: 1 << 16})
			r := core.NewRunner(db, policy)
			if _, err := r.RunPhase("observe", 60, 7); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := policy.Reorganize(db.Store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := build()
			if err != nil {
				b.Fatal(err)
			}
			policy := &cluster.Sequential{Objects: db.AllOIDs}
			b.StartTimer()
			if _, err := policy.Reorganize(db.Store); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreAccess measures the page-fault path (miss) and the
// resident path (hit) of the store.
func BenchmarkStoreAccess(b *testing.B) {
	s, err := store.Open(store.Config{PageSize: 4096, BufferPages: 8})
	if err != nil {
		b.Fatal(err)
	}
	var oids []store.OID
	for i := 0; i < 2000; i++ {
		oid, err := s.Create(100)
		if err != nil {
			b.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Access(oids[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		src := lewis.New(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Random far accesses against an 8-frame pool: ~always a miss.
			if err := s.Access(oids[src.Intn(len(oids))]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// parallelStore builds a store populated for the contention benchmarks.
func parallelStore(b *testing.B, shards int) (*store.Store, []store.OID) {
	b.Helper()
	s, err := store.Open(store.Config{PageSize: 4096, BufferPages: 4096, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	var oids []store.OID
	for i := 0; i < 10000; i++ {
		oid, err := s.Create(100)
		if err != nil {
			b.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	return s, oids
}

// BenchmarkStoreAccessParallel hammers Store.Access from GOMAXPROCS
// goroutines: the single-shard configuration reproduces the original
// global-mutex store, the sharded one is the tentpole concurrency path.
func BenchmarkStoreAccessParallel(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, oids := parallelStore(b, shards)
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct per-worker seeds: identical streams would hit
				// the same shard in lockstep and overstate contention.
				src := lewis.New(1000 + worker.Add(1))
				for pb.Next() {
					if err := s.Access(oids[src.Intn(len(oids))]); err != nil {
						// Fatal must not run on a RunParallel worker.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreUpdateParallel is the dirty-path analogue: Access plus a
// slot-directory dirty mark under the owning pool shard's lock.
func BenchmarkStoreUpdateParallel(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, oids := parallelStore(b, shards)
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct per-worker seeds, as in the Access benchmark.
				src := lewis.New(2000 + worker.Add(1))
				for pb.Next() {
					if err := s.Update(oids[src.Intn(len(oids))]); err != nil {
						// Fatal must not run on a RunParallel worker.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkScalabilitySweep regenerates the tentpole scalability table on
// the quick geometry.
func BenchmarkScalabilitySweep(b *testing.B) { benchTable(b, exp.Scalability) }

// residentDB builds the fully resident database the fast-path benchmarks
// run on: with the whole working set cached, time/op measures the
// harness's own CPU cost per transaction — the overhead OCB's design says
// must stay negligible.
func residentDB(b *testing.B, clientN int) *core.Database {
	b.Helper()
	p := core.DefaultParams()
	p.NO = 5000
	p.SupRef = 5000
	p.BufferPages = 4096
	p.ClientN = clientN
	db, err := core.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// warmPhaseTx is the per-iteration transaction count of the warm-phase
// benchmarks; tx/s in their output is derived from it.
const warmPhaseTx = 200

// BenchmarkWarmTraversalPhase is the headline fast-path benchmark: one
// warm phase of the default four-traversal mix per iteration, on a
// resident database, replaying the identical transaction stream every
// time. BENCH_baseline.json records its before/after numbers.
func BenchmarkWarmTraversalPhase(b *testing.B) {
	db := residentDB(b, 1)
	r := core.NewRunner(db, nil)
	if _, err := r.RunPhase("prewarm", 100, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := r.RunPhase("warm", warmPhaseTx, 2)
		if err != nil {
			b.Fatal(err)
		}
		if m.Transactions != warmPhaseTx {
			b.Fatalf("phase ran %d transactions, want %d", m.Transactions, warmPhaseTx)
		}
	}
	b.ReportMetric(float64(b.N)*warmPhaseTx/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkWarmTraversalParallel is the RunParallel variant: GOMAXPROCS
// executors share one resident database (sharded store geometry), each
// drawing its own transaction stream.
func BenchmarkWarmTraversalParallel(b *testing.B) {
	db := residentDB(b, 8)
	p := db.P
	// Prewarm the cache so every worker measures the resident path.
	r := core.NewRunner(db, nil)
	if _, err := r.RunPhase("prewarm", 100, 1); err != nil {
		b.Fatal(err)
	}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Distinct per-worker seeds, as in the store benchmarks.
		src := lewis.New(3000 + worker.Add(1))
		ex := core.NewExecutor(db, nil, src)
		for pb.Next() {
			tx := core.SampleTransaction(p, src)
			if _, err := ex.Exec(tx); err != nil {
				// Fatal must not run on a RunParallel worker.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkScanTransaction measures HyperModel's Sequential Scan over the
// live set — the generic-workload operation that used to rebuild the full
// live-OID slice twice per transaction.
func BenchmarkScanTransaction(b *testing.B) {
	db := residentDB(b, 1)
	src := lewis.New(7)
	ex := core.NewExecutor(db, nil, src)
	if _, err := ex.Exec(core.Transaction{Type: core.ScanOp}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Exec(core.Transaction{Type: core.ScanOp})
		if err != nil {
			b.Fatal(err)
		}
		if res.ObjectsAccessed != db.NumLive() {
			b.Fatalf("scan touched %d objects, live set has %d", res.ObjectsAccessed, db.NumLive())
		}
	}
}
