// Command ocbgen generates an OCB database and prints its anatomy: the
// schema the generator drew (classes, reference types, instance sizes),
// the object population per class, and the physical placement statistics.
// It is the inspection tool for understanding what a parameter set builds
// before benchmarking it.
package main

import (
	_ "ocb/internal/backend/all"

	"flag"
	"fmt"
	"os"

	"ocb/internal/core"
	"ocb/internal/report"
)

func main() {
	preset := flag.String("preset", "default", "parameter preset: default | club")
	nc := flag.Int("nc", 0, "NC: number of classes (0 keeps the preset)")
	no := flag.Int("no", 0, "NO: number of objects")
	seed := flag.Int64("seed", 0, "random seed (0 keeps the preset)")
	verbose := flag.Bool("v", false, "print the full class table")
	saveTo := flag.String("save", "", "save the generated database (gob) to this file")
	loadFrom := flag.String("load", "", "load a saved database instead of generating")
	flag.Parse()

	p := core.DefaultParams()
	if *preset == "club" {
		p = core.CluBParams()
	} else if *preset != "default" {
		fmt.Fprintf(os.Stderr, "ocbgen: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	if *nc > 0 {
		p.NC = *nc
		p.SupClass = *nc
	}
	if *no > 0 {
		p.NO = *no
		p.SupRef = *no
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	var db *core.Database
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: %v\n", err)
			os.Exit(1)
		}
		db, err = core.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: %v\n", err)
			os.Exit(1)
		}
		p = db.P
	} else {
		var err error
		db, err = core.Generate(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := core.CheckDatabase(db); err != nil {
		fmt.Fprintf(os.Stderr, "ocbgen: integrity check failed: %v\n", err)
		os.Exit(1)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: %v\n", err)
			os.Exit(1)
		}
		if err := db.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: saving: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ocbgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("database saved to %s\n", *saveTo)
	}

	st := db.Store.Stats()
	fmt.Printf("database generated in %s (seed %d) — integrity check passed\n",
		report.Dur(db.GenTime), p.Seed)
	fmt.Printf("%d classes, %d objects, %d pages of %d bytes\n\n",
		p.NC, st.Objects, st.Pages, p.PageSize)

	if *verbose {
		ct := report.New("Schema", "Class", "MAXNREF", "BASESIZE", "InstanceSize", "DiskSize", "Instances", "Live refs", "NIL refs")
		for i := 1; i <= p.NC; i++ {
			c := db.Schema.Class(i)
			live, nils := 0, 0
			for _, cr := range c.CRef {
				if cr == core.NilClass {
					nils++
				} else {
					live++
				}
			}
			ct.AddRow(report.Int(i), report.Int(c.MaxNRef), report.Int(c.BaseSize),
				report.Int(c.InstanceSize), report.Int(c.DiskSize()),
				report.Int(len(c.Iterator)), report.Int(live), report.Int(nils))
		}
		_ = ct.Render(os.Stdout)
	}

	// Aggregate shape statistics.
	totalRefs, nilRefs, backRefs := 0, 0, 0
	minSize, maxSize := 1<<31, 0
	for i := 1; i <= p.NO; i++ {
		obj := db.Objects[i]
		for _, r := range obj.ORef {
			totalRefs++
			if r == 0 {
				nilRefs++
			}
		}
		backRefs += len(obj.BackRef)
		c := db.Schema.Class(obj.Class)
		if s := c.DiskSize(); s < minSize {
			minSize = s
		}
		if s := c.DiskSize(); s > maxSize {
			maxSize = s
		}
	}
	at := report.New("Object graph", "Metric", "Value")
	at.AddRow("reference slots", report.Int(totalRefs))
	at.AddRow("NIL references", report.Int(nilRefs))
	at.AddRow("live references (= backrefs)", report.Int(backRefs))
	at.AddRow("min object disk size (bytes)", report.Int(minSize))
	at.AddRow("max object disk size (bytes)", report.Int(maxSize))
	at.AddRow("mean objects per page", fmt.Sprintf("%.1f", float64(st.Objects)/float64(st.Pages)))
	_ = at.Render(os.Stdout)
}
