// Command ocblint runs the project's static-analysis suite (package
// internal/lint) over the module.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/ocblint ./...
//
// loads and type-checks the named packages (standard-library imports are
// checked from GOROOT source, so no build cache or network is needed) and
// prints findings as file:line:col: analyzer: message, exiting 1 when
// there are any.
//
// It also speaks enough of the vet driver protocol (-V=full, -flags, and
// a *.cfg argument with gc export data) to run as
//
//	go vet -vettool=$(which ocblint) ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ocb/internal/lint"
	"ocb/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet driver handshake: `go vet` probes the tool before use.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// Name, the literal "version", and a build identifier: the go
			// command hashes this line into its cache key.
			fmt.Printf("ocblint version ocb-suite-1\n")
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0])
		}
	}

	fs := flag.NewFlagSet("ocblint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ocblint [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		filtered := analyzers[:0:0]
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "ocblint: no analyzer matches -only=%s\n", *only)
			return 2
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
		return 2
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
		return 2
	}

	bad := false
	for _, pkg := range pkgs {
		findings, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocblint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, f := range findings {
			bad = true
			fmt.Printf("%s: %s: %s\n", relPosition(root, f.Pos), f.Analyzer, f.Message)
		}
	}
	if bad {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPosition renders a position with the module root stripped.
func relPosition(root string, pos token.Position) string {
	name := pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, pos.Line, pos.Column)
}

// vetConfig is the subset of the vet driver's unit config this tool
// reads (the file go vet passes as the sole argument).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit under `go vet -vettool`.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Always produce the facts file: the go command expects it even though
	// this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite checks production-code invariants; test files (which
		// vet units include) legitimately use clocks and string matching.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "ocblint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	if len(files) == 0 {
		return 0 // external test package: nothing in scope
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ocblint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &load.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	findings, err := lint.Run(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocblint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Pos.Offset < findings[j].Pos.Offset })
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 2 // the go command's "diagnostics reported" exit code
}
