package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocb/internal/backend"
	"ocb/internal/report"
	"ocb/internal/scenarios"
	"ocb/internal/workload"
)

// runScenario implements the `ocb run` subcommand: build a scenario
// preset (or a JSON spec file) and execute it through the unified
// workload engine, printing one result table per phase.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("ocb run", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ocb run [-scenario name | -scenario-file spec.json] [flags]\n\n")
		fmt.Fprintf(fs.Output(), "scenario presets:\n")
		for _, name := range scenarios.List() {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", name, scenarios.Describe(name))
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	name := fs.String("scenario", "", "scenario preset: "+strings.Join(scenarios.List(), " | "))
	file := fs.String("scenario-file", "", "JSON scenario spec (see examples/scenarios/)")
	backendName := fs.String("backend", backend.DefaultName,
		fmt.Sprintf("system-under-test backend: %s", strings.Join(backend.List(), " | ")))
	var backendOpts backend.OptionFlags
	fs.Var(&backendOpts, "backend-opt", "backend-specific option key=value (repeatable)")
	clients := fs.Int("clients", 0, "CLIENTN: concurrent clients (0 keeps the preset default)")
	think := fs.Duration("think", 0, "THINK latency between operations")
	thinkDist := fs.String("think-dist", "", "stochastic pacing: lewis distribution for the inter-op gaps (negexp:0.5, selfsimilar, ...)")
	openLoop := fs.Bool("openloop", false, "open-loop pacing: fixed arrival schedule of one op per THINK")
	rate := fs.Float64("rate", 0, "open-loop arrival rate target, ops/sec across all clients (latency from scheduled arrival; exclusive with -think)")
	tolerateErrors := fs.Bool("tolerate-errors", false, "count op failures as errors instead of aborting the run")
	warmup := fs.Int("warmup", 0, "untimed warmup operations per client (needs -measured; COLDN for ocb)")
	measured := fs.Int("measured", 0, "sampled mix: measured operations per client (HOTN for ocb)")
	quick := fs.Bool("quick", false, "scaled-down geometry (seconds instead of minutes)")
	seed := fs.Int64("seed", 0, "seed offset applied to the preset (0 keeps it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*name == "") == (*file == "") {
		fs.Usage()
		return fmt.Errorf("need exactly one of -scenario or -scenario-file")
	}
	opts, err := backend.ParseOptions(backendOpts)
	if err != nil {
		return err
	}
	o := scenarios.Options{
		Backend:        *backendName,
		BackendOptions: opts,
		Quick:          *quick,
		Seed:           *seed,
		Clients:        *clients,
		Think:          *think,
		ThinkDist:      *thinkDist,
		OpenLoop:       *openLoop,
		Rate:           *rate,
		TolerateErrors: *tolerateErrors,
		Warmup:         *warmup,
		Measured:       *measured,
	}

	var sc *scenarios.Scenario
	if *file != "" {
		sc, err = scenarios.LoadFile(*file, o)
	} else {
		sc, err = scenarios.Build(*name, o)
	}
	if err != nil {
		return err
	}

	fmt.Printf("scenario %s — %s\n", sc.Name, sc.Description)
	for _, note := range sc.Notes {
		fmt.Printf("  %s\n", note)
	}
	fmt.Println()

	// The scenario owns its system under test; release it (files,
	// scratch directories) once the run is done.
	defer sc.Close()
	results, err := sc.Run()
	if err != nil {
		return err
	}
	violated := 0
	for _, pr := range results {
		if pr.SetupNote != "" {
			fmt.Printf("%s\n\n", pr.SetupNote)
		}
		printResult(pr.Result)
		for _, v := range pr.Violations {
			violated++
			fmt.Printf("SLO VIOLATION [%s] %s\n", pr.Phase, v)
		}
	}
	if violated > 0 {
		// The violation error is what makes a scenario file with an "slo"
		// block a performance test: `ocb run` exits non-zero on it.
		return fmt.Errorf("%d SLO violation(s)", violated)
	}
	return nil
}

// printResult renders one engine result as the unified scenario table.
func printResult(r *workload.Result) {
	t := report.New(fmt.Sprintf("%s — %d clients, %d ops in %s (%.1f ops/s, mean %.1f I/Os per op)",
		r.Name, r.Clients, r.Executed, report.Dur(r.Duration), r.Throughput, r.MeanIOsPerOp()),
		"Op", "Count", "Mean µs", "P50 µs", "P95 µs", "P99 µs", "Mean objects", "Mean I/Os")
	for i := range r.PerOp {
		om := &r.PerOp[i]
		if om.Count == 0 && om.Skipped == 0 {
			continue
		}
		count := report.I64(om.Count)
		if om.Skipped > 0 {
			count += fmt.Sprintf(" (%d skipped)", om.Skipped)
		}
		t.AddRow(om.Name, count, report.F1(om.Response.Mean()),
			report.F1(om.ResponseQ.Median()), report.F1(om.ResponseQ.P95()), report.F1(om.ResponseQ.P99()),
			report.F1(om.Objects.Mean()), report.F1(om.IOs.Mean()))
	}
	t.AddRow("all", report.I64(r.Executed), report.F1(r.Total.Response.Mean()),
		report.F1(r.P50()), report.F1(r.P95()), report.F1(r.P99()),
		report.F1(r.Total.Objects.Mean()), report.F1(r.Total.IOs.Mean()))
	for _, sk := range r.Skips {
		t.AddNote("skip: %s", sk)
	}
	st := r.Backend
	if st.Pages > 0 {
		t.AddNote("backend: %d objects on %d pages, pool hit ratio %.2f, phase disk delta %d reads / %d writes",
			st.Objects, st.Pages, st.Pool.HitRatio(), r.DiskDelta.TotalReads(), r.DiskDelta.TotalWrites())
	} else {
		t.AddNote("backend: %d objects (no page abstraction)", st.Objects)
	}
	_ = t.Render(os.Stdout)
}
