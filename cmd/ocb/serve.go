package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ocb/internal/backend"
	"ocb/internal/buffer"
	"ocb/internal/wire"
)

// serve implements `ocb serve`: host any registered backend on a TCP
// address, speaking the wire protocol, so a separate `ocb` process (or
// fleet of them) can benchmark it through `-backend remote`. SIGTERM or
// SIGINT drains gracefully: in-flight requests get their responses, then
// connections close and the hosted store shuts down.
func serve(args []string) error {
	fs := flag.NewFlagSet("ocb serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8663", "TCP address to listen on")
	backendName := fs.String("backend", backend.DefaultName,
		fmt.Sprintf("hosted backend: %s", strings.Join(backend.ListLocal(), " | ")))
	var backendOpts backend.OptionFlags
	fs.Var(&backendOpts, "backend-opt",
		"backend-specific option key=value (repeatable), passed through to the hosted driver")
	pagesize := fs.Int("pagesize", 0, "page size hint for paged backends (0 = driver default)")
	bufferPages := fs.Int("buffer", 0, "buffer pool frames for paged backends (0 = driver default)")
	shards := fs.Int("shards", 0, "lock-sharding degree hint (0 = driver default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	name := *backendName
	if name == "" {
		name = backend.DefaultName
	}
	if backend.InfoOf(name).Remote {
		return fmt.Errorf("backend %q is itself a network client; host one of: %s",
			name, strings.Join(backend.ListLocal(), ", "))
	}
	opts, err := backend.ParseOptions(backendOpts)
	if err != nil {
		return err
	}
	b, err := backend.Open(name, backend.Config{
		PageSize:    *pagesize,
		BufferPages: *bufferPages,
		Policy:      buffer.LRU,
		Shards:      *shards,
		Options:     opts,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = backend.Shutdown(b)
		return err
	}
	srv := wire.NewServer(b, name, log.New(os.Stderr, "", log.LstdFlags))
	fmt.Printf("ocb serve: hosting backend %q on %s (protocol v%d)\n", name, ln.Addr(), wire.Version)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Printf("ocb serve: %s, draining\n", s)
		srv.Shutdown()
		<-done
		err = nil
	case err = <-done:
		srv.Shutdown()
	}
	if cerr := backend.Shutdown(b); err == nil {
		err = cerr
	}
	return err
}
