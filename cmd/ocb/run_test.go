package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a scenario spec file into a temp dir.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSLOGateExitStatus pins the performance-test contract end to end
// through the run entry point: a scenario file whose SLO the run meets
// returns nil (exit 0 from main), one whose SLO it cannot meet returns a
// violation error (exit 1) — with the violations named in it.
func TestRunSLOGateExitStatus(t *testing.T) {
	// Generous bounds on a tiny run: passes on any machine.
	pass := writeSpec(t, `{
		"scenario": "oo1",
		"quick": true,
		"measured": 40,
		"slo": {"p95_us": 60000000, "min_ops_per_sec": 0.001}
	}`)
	if err := runScenario([]string{"-scenario-file", pass}); err != nil {
		t.Fatalf("passing SLO returned error: %v", err)
	}

	// An unreachable throughput floor: violates on any machine.
	fail := writeSpec(t, `{
		"scenario": "oo1",
		"quick": true,
		"measured": 40,
		"slo": {"min_ops_per_sec": 1e12}
	}`)
	err := runScenario([]string{"-scenario-file", fail})
	if err == nil {
		t.Fatal("violated SLO returned nil (would exit 0)")
	}
	if !strings.Contains(err.Error(), "SLO violation") {
		t.Fatalf("violation error %q does not name the SLO", err)
	}
}

// TestRunRateFlag drives the -rate path through the CLI entry: an
// arrival-rate run completes and still enforces its SLO.
func TestRunRateFlag(t *testing.T) {
	spec := writeSpec(t, `{
		"scenario": "oo1",
		"quick": true,
		"measured": 40,
		"slo": {"p95_us": 60000000}
	}`)
	if err := runScenario([]string{"-scenario-file", spec, "-rate", "2000", "-think-dist", "negexp:0.5"}); err != nil {
		t.Fatalf("rate-paced run failed: %v", err)
	}
}

// TestRunRejectsRateWithThink: the flag conflict surfaces as an error,
// not a silent preference.
func TestRunRejectsRateWithThink(t *testing.T) {
	spec := writeSpec(t, `{"scenario": "oo1", "quick": true, "measured": 10}`)
	if err := runScenario([]string{"-scenario-file", spec, "-rate", "100", "-think", "1ms"}); err == nil {
		t.Fatal("rate+think accepted")
	}
}

// TestSweepSubcommand drives `ocb sweep` over a tiny grid and the
// rate-search mode; both must complete against the quick oo1 build.
func TestSweepSubcommand(t *testing.T) {
	if err := sweepScenario([]string{
		"-scenario", "oo1", "-quick", "-measured", "30",
		"-clients", "1,2", "-rates", "4000",
	}); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if err := sweepScenario([]string{
		"-scenario", "oo1", "-quick", "-measured", "30",
		"-search-p95", "60000000", "-rate-max", "4000",
	}); err != nil {
		t.Fatalf("rate search failed: %v", err)
	}
}

// TestSweepSLOGateExitStatus: a swept SLO violation propagates as an
// error from the subcommand, same contract as run.
func TestSweepSLOGateExitStatus(t *testing.T) {
	fail := writeSpec(t, `{
		"scenario": "oo1",
		"quick": true,
		"measured": 20,
		"slo": {"min_ops_per_sec": 1e12}
	}`)
	if err := sweepScenario([]string{"-scenario-file", fail, "-clients", "1"}); err == nil {
		t.Fatal("violated sweep returned nil (would exit 0)")
	}
}
