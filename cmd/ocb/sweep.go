package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ocb/internal/backend"
	"ocb/internal/report"
	"ocb/internal/scenarios"
	"ocb/internal/workload"
)

// sweepScenario implements the `ocb sweep` subcommand: build a scenario
// once (at the largest client count of the grid, so per-client suite
// state exists for every point) and drive its final phase across a
// CLIENTN × arrival-rate grid through workload.Sweep — or, with
// -search-p95, binary-search the highest sustainable rate with
// workload.FindMaxRate. One row per point either way: the
// latency-under-load curve the capacity question needs.
func sweepScenario(args []string) error {
	fs := flag.NewFlagSet("ocb sweep", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ocb sweep [-scenario name | -scenario-file spec.json] -clients 1,2,4 [-rates 500,1000] [flags]\n")
		fmt.Fprintf(fs.Output(), "       ocb sweep -scenario oo1 -search-p95 5000 -rate-max 20000 [flags]\n\nflags:\n")
		fs.PrintDefaults()
	}
	name := fs.String("scenario", "", "scenario preset: "+strings.Join(scenarios.List(), " | "))
	file := fs.String("scenario-file", "", "JSON scenario spec (see examples/scenarios/)")
	backendName := fs.String("backend", backend.DefaultName,
		fmt.Sprintf("system-under-test backend: %s", strings.Join(backend.List(), " | ")))
	var backendOpts backend.OptionFlags
	fs.Var(&backendOpts, "backend-opt", "backend-specific option key=value (repeatable)")
	clientList := fs.String("clients", "", "comma-separated client counts to sweep (default: the scenario's own)")
	rateList := fs.String("rates", "", "comma-separated arrival-rate targets in ops/sec across all clients")
	thinkDist := fs.String("think-dist", "", "stochastic pacing: lewis distribution for the inter-op gaps")
	warmup := fs.Int("warmup", 0, "untimed warmup operations per client (needs -measured)")
	measured := fs.Int("measured", 0, "measured operations per client per point")
	quick := fs.Bool("quick", false, "scaled-down geometry")
	seed := fs.Int64("seed", 0, "seed offset applied to the preset (0 keeps it)")
	coldStart := fs.Bool("coldstart", false, "drop the backend cache before every point")
	searchP95 := fs.Float64("search-p95", 0, "rate-search mode: find the max rate with P95 at or under this bound (µs)")
	rateMin := fs.Float64("rate-min", 0, "rate-search bracket floor, ops/sec (default rate-max/64)")
	rateMax := fs.Float64("rate-max", 0, "rate-search bracket ceiling, ops/sec (required with -search-p95)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*name == "") == (*file == "") {
		fs.Usage()
		return fmt.Errorf("need exactly one of -scenario or -scenario-file")
	}
	clientGrid, err := parseIntList(*clientList)
	if err != nil {
		return fmt.Errorf("-clients: %w", err)
	}
	rateGrid, err := parseFloatList(*rateList)
	if err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	if *searchP95 > 0 && len(rateGrid) > 0 {
		return fmt.Errorf("-search-p95 and -rates are exclusive: a search picks its own rates")
	}
	opts, err := backend.ParseOptions(backendOpts)
	if err != nil {
		return err
	}
	// Build at the grid's largest client count: suites that pre-size
	// per-client state at build time (oo1's insert streams) must have a
	// slot for every client any point will run.
	maxClients := 0
	for _, n := range clientGrid {
		if n > maxClients {
			maxClients = n
		}
	}
	o := scenarios.Options{
		Backend:        *backendName,
		BackendOptions: opts,
		Quick:          *quick,
		Seed:           *seed,
		Clients:        maxClients,
		ThinkDist:      *thinkDist,
		Warmup:         *warmup,
		Measured:       *measured,
	}
	var sc *scenarios.Scenario
	if *file != "" {
		sc, err = scenarios.LoadFile(*file, o)
	} else {
		sc, err = scenarios.Build(*name, o)
	}
	if err != nil {
		return err
	}
	defer sc.Close()

	fmt.Printf("scenario %s — %s\n", sc.Name, sc.Description)
	for _, note := range sc.Notes {
		fmt.Printf("  %s\n", note)
	}
	fmt.Println()

	// The sweep drives the final phase (the measured one by convention:
	// warm for ocb, bench for the suites). Earlier phases run once, in
	// protocol order — dstc's observe pass and reorganization, ocb's cold
	// run — so the swept phase sees the state the protocol intends.
	for _, ph := range sc.Phases[:len(sc.Phases)-1] {
		if ph.Setup != nil {
			note, err := ph.Setup()
			if err != nil {
				return fmt.Errorf("phase %s setup: %w", ph.Name, err)
			}
			fmt.Printf("%s\n\n", note)
		}
		if _, err := workload.Run(ph.Spec); err != nil {
			return fmt.Errorf("phase %s (priming): %w", ph.Name, err)
		}
	}
	last := sc.Phases[len(sc.Phases)-1]
	if last.Setup != nil {
		note, err := last.Setup()
		if err != nil {
			return fmt.Errorf("phase %s setup: %w", last.Name, err)
		}
		fmt.Printf("%s\n\n", note)
	}
	spec := last.Spec
	if *coldStart {
		spec.ColdStart = true
	}

	if *searchP95 > 0 {
		return runRateSearch(sc.Name, spec, *searchP95, *rateMin, *rateMax)
	}

	points, err := workload.Sweep(spec, workload.SweepOptions{
		Clients: clientGrid,
		Rates:   rateGrid,
	})
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("%s — latency under load (phase %s)", sc.Name, last.Name),
		"Clients", "Target ops/s", "Achieved ops/s", "P50 µs", "P95 µs", "P99 µs", "Mean I/Os", "Errors", "SLO")
	violated := 0
	for _, pt := range points {
		target := "-"
		if pt.Rate > 0 {
			target = report.F1(pt.Rate)
		}
		slo := "-"
		if spec.SLO != nil {
			slo = "pass"
			if len(pt.Violations) > 0 {
				violated++
				slo = fmt.Sprintf("FAIL (%d)", len(pt.Violations))
			}
		}
		r := pt.Result
		t.AddRow(report.Int(pt.Clients), target, report.F1(r.Throughput),
			report.F1(r.P50()), report.F1(r.P95()), report.F1(r.P99()),
			report.F1(r.MeanIOsPerOp()), report.I64(r.Total.Errors), slo)
	}
	t.AddNote("one engine run per row, same seed per point: op streams depend on the client count, not the grid position")
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if violated > 0 {
		return fmt.Errorf("%d sweep point(s) violated the SLO", violated)
	}
	return nil
}

// runRateSearch drives workload.FindMaxRate over the phase spec and
// prints the probe trajectory plus the verdict.
func runRateSearch(name string, spec *workload.Spec, p95Bound, rateMin, rateMax float64) error {
	if rateMax <= 0 {
		return fmt.Errorf("-search-p95 needs -rate-max (the bracket ceiling)")
	}
	res, err := workload.FindMaxRate(spec, workload.RateSearch{
		P95BoundUs: p95Bound,
		MinRate:    rateMin,
		MaxRate:    rateMax,
	})
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("%s — max sustainable rate (P95 <= %.0fµs)", name, p95Bound),
		"Target ops/s", "Achieved ops/s", "P95 µs", "Sustained", "Verdict")
	for _, p := range res.Probes {
		verdict := "fail"
		if p.Pass {
			verdict = "pass"
		}
		t.AddRow(report.F1(p.Rate), report.F1(p.Result.Throughput), report.F1(p.P95),
			fmt.Sprintf("%v", p.Sustained), verdict)
	}
	if res.MaxRate > 0 {
		t.AddNote("max sustainable rate: %.1f ops/s", res.MaxRate)
	} else {
		t.AddNote("no sustainable rate found: even the bracket floor failed the bound")
	}
	return t.Render(os.Stdout)
}

// parseIntList parses a comma-separated int list ("1,2,4").
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatList parses a comma-separated float list ("500,1000.5").
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
