// Command ocb runs one fully configured OCB benchmark end to end:
// generate the parameterized database, optionally attach a clustering
// policy, execute the cold/warm protocol, optionally reorganize between
// phases, and print the paper's metrics (response time, accessed objects,
// I/Os — globally and per transaction type).
//
// Every Table 1 / Table 2 parameter is a flag; distributions accept the
// specs of lewis.ParseDistribution (uniform, constant[:k], roundrobin,
// zipf[:s], normal, negexp[:m], refzone:z[:p]).
//
// Subcommands:
//
//	ocb run -scenario oo1|oo7|hypermodel|dstc|ocb [flags]
//	ocb run -scenario-file spec.json [flags]
//	ocb sweep -scenario oo1 -clients 1,2,4 -rates 500,1000 [flags]
//	ocb scenarios
//	ocb serve -addr host:port -backend paged [flags]
//
// `ocb run` executes a scenario preset — any of the benchmark suites, or
// a user-authored JSON mix — through the unified workload engine and
// prints one result table per phase (throughput, latency quantiles,
// per-op breakdown, capability skips); a spec file with an "slo" block
// makes it a performance test (non-zero exit on violation). `ocb sweep`
// drives one scenario across a CLIENTN × arrival-rate grid (or, with
// -search-p95, binary-searches the max sustainable rate) and prints the
// latency-under-load table. `ocb scenarios` lists the presets.
// `ocb serve` hosts any local backend on a TCP address so other ocb
// processes can benchmark it via `-backend remote -backend-opt addr=...`.
// Without a subcommand, ocb runs the classic flag-configured protocol.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocb/internal/backend"
	_ "ocb/internal/backend/all"
	"ocb/internal/cluster"
	"ocb/internal/core"
	"ocb/internal/dstc"
	"ocb/internal/lewis"
	"ocb/internal/report"
	"ocb/internal/scenarios"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			if err := runScenario(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ocb run: %v\n", err)
				os.Exit(1)
			}
			return
		case "sweep":
			if err := sweepScenario(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ocb sweep: %v\n", err)
				os.Exit(1)
			}
			return
		case "scenarios":
			for _, name := range scenarios.List() {
				fmt.Printf("%-11s %s\n", name, scenarios.Describe(name))
			}
			return
		case "serve":
			if err := serve(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ocb serve: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ocb: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	p := core.DefaultParams()

	preset := flag.String("preset", "default", "parameter preset: default | club | generic")
	// Database parameters (Table 1).
	nc := flag.Int("nc", 0, "NC: number of classes (0 keeps the preset)")
	maxnref := flag.Int("maxnref", 0, "MAXNREF: references per class")
	basesize := flag.Int("basesize", 0, "BASESIZE: instance base size (bytes)")
	no := flag.Int("no", 0, "NO: total number of objects")
	nreft := flag.Int("nreft", 0, "NREFT: number of reference types")
	infclass := flag.Int("infclass", -1, "INFCLASS (-1 keeps the preset)")
	supclass := flag.Int("supclass", 0, "SUPCLASS")
	infref := flag.Int("infref", 0, "INFREF")
	supref := flag.Int("supref", 0, "SUPREF")
	dist1 := flag.String("dist1", "", "DIST1: reference type distribution")
	dist2 := flag.String("dist2", "", "DIST2: class reference distribution")
	dist3 := flag.String("dist3", "", "DIST3: object class distribution")
	dist4 := flag.String("dist4", "", "DIST4: object reference distribution")
	dist5 := flag.String("dist5", "", "RAND5: transaction root distribution")
	// Workload parameters (Table 2).
	setdepth := flag.Int("setdepth", -1, "SETDEPTH")
	simdepth := flag.Int("simdepth", -1, "SIMDEPTH")
	hiedepth := flag.Int("hiedepth", -1, "HIEDEPTH")
	stodepth := flag.Int("stodepth", -1, "STODEPTH")
	coldn := flag.Int("coldn", -1, "COLDN: cold-run transactions")
	hotn := flag.Int("hotn", -1, "HOTN: warm-run transactions")
	think := flag.Duration("think", -1, "THINK latency between transactions")
	pset := flag.Float64("pset", -1, "PSET")
	psimple := flag.Float64("psimple", -1, "PSIMPLE")
	phier := flag.Float64("phier", -1, "PHIER")
	pstoch := flag.Float64("pstoch", -1, "PSTOCH")
	preverse := flag.Float64("preverse", -1, "probability of reversed transactions")
	clients := flag.Int("clients", 0, "CLIENTN: concurrent clients")
	// System under test. Backend-specific geometry (page size, buffer,
	// replacement policy ...) travels as -backend-opt key=value pairs so a
	// backend only sees options it understands; the driver validates the
	// keys and rejects unknown ones naming the valid set.
	backendName := flag.String("backend", backend.DefaultName,
		fmt.Sprintf("system-under-test backend: %s", strings.Join(backend.List(), " | ")))
	var backendOpts backend.OptionFlags
	flag.Var(&backendOpts, "backend-opt",
		"backend-specific option key=value (repeatable); e.g. -backend-opt pagesize=4096 -backend-opt buffer=512 for paged")
	seed := flag.Int64("seed", 0, "random seed (0 keeps the preset)")
	// Clustering.
	clust := flag.String("cluster", "none", "clustering policy: none | sequential | byclass | hot | greedy | dstc")
	reorg := flag.Bool("reorganize", true, "reorganize between the cold and warm runs")

	flag.Parse()

	switch *preset {
	case "default":
	case "club":
		p = core.CluBParams()
	case "generic":
		p = core.GenericParams()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	setInt := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	setInt(&p.NC, *nc)
	setInt(&p.MaxNRef, *maxnref)
	setInt(&p.BaseSize, *basesize)
	setInt(&p.NO, *no)
	setInt(&p.NRefT, *nreft)
	if *infclass >= 0 {
		p.InfClass = *infclass
	}
	setInt(&p.SupClass, *supclass)
	setInt(&p.InfRef, *infref)
	setInt(&p.SupRef, *supref)
	if *nc > 0 && *supclass == 0 {
		p.SupClass = p.NC
	}
	if *no > 0 && *supref == 0 {
		p.SupRef = p.NO
	}
	for _, d := range []struct {
		spec string
		dst  *lewis.Distribution
	}{{*dist1, &p.Dist1}, {*dist2, &p.Dist2}, {*dist3, &p.Dist3}, {*dist4, &p.Dist4}, {*dist5, &p.Dist5}} {
		if d.spec == "" {
			continue
		}
		dist, err := lewis.ParseDistribution(d.spec)
		if err != nil {
			return err
		}
		*d.dst = dist
	}
	setIfSet := func(dst *int, v int) {
		if v >= 0 {
			*dst = v
		}
	}
	setIfSet(&p.SetDepth, *setdepth)
	setIfSet(&p.SimDepth, *simdepth)
	setIfSet(&p.HieDepth, *hiedepth)
	setIfSet(&p.StoDepth, *stodepth)
	setIfSet(&p.ColdN, *coldn)
	setIfSet(&p.HotN, *hotn)
	if *think >= 0 {
		p.Think = *think
	}
	setProb := func(dst *float64, v float64) {
		if v >= 0 {
			*dst = v
		}
	}
	setProb(&p.PSet, *pset)
	setProb(&p.PSimple, *psimple)
	setProb(&p.PHier, *phier)
	setProb(&p.PStoch, *pstoch)
	setProb(&p.PReverse, *preverse)
	setInt(&p.ClientN, *clients)
	p.Backend = *backendName
	opts, err := backend.ParseOptions(backendOpts)
	if err != nil {
		return err
	}
	p.BackendOptions = opts
	if *seed != 0 {
		p.Seed = *seed
	}
	if err := p.Validate(); err != nil {
		return err
	}

	fmt.Printf("generating database: NC=%d NO=%d seed=%d ...\n", p.NC, p.NO, p.Seed)
	db, err := core.Generate(p)
	if err != nil {
		return err
	}
	// Durable backends own files (ephemeral ones a scratch directory);
	// release the store once the protocol is done.
	defer db.Close()
	st := db.Store.Stats()
	if st.Pages > 0 {
		fmt.Printf("generated in %s on backend %q: %d objects on %d pages\n\n",
			report.Dur(db.GenTime), *backendName, st.Objects, st.Pages)
	} else {
		fmt.Printf("generated in %s on backend %q: %d objects (no page abstraction)\n\n",
			report.Dur(db.GenTime), *backendName, st.Objects)
	}

	var policy cluster.Policy
	switch *clust {
	case "none", "":
		policy = nil
	case "sequential":
		policy = &cluster.Sequential{Objects: db.AllOIDs}
	case "byclass":
		policy = &cluster.ByClass{Objects: db.AllOIDs, Label: db.ClassOf}
	case "hot":
		policy = cluster.NewHot()
	case "greedy":
		policy = cluster.NewGreedy(1 << 16)
	case "dstc":
		policy = dstc.New(dstc.Params{ObservationPeriod: 1 << 30, MaxUnitBytes: 1 << 16})
	default:
		return fmt.Errorf("unknown clustering policy %q", *clust)
	}

	r := core.NewRunner(db, policy)
	cold, err := r.RunPhase("cold", p.ColdN, p.Seed+1)
	if err != nil {
		return err
	}
	printPhase(cold)

	if policy != nil && *reorg {
		start := time.Now()
		rs, err := r.Reorganize()
		switch {
		case errors.Is(err, backend.ErrNotSupported):
			fmt.Printf("reorganization skipped: backend %q has no physical relocation\n\n", *backendName)
		case err != nil:
			return err
		default:
			fmt.Printf("reorganized with %s in %s: moved %d objects, %d pages read, %d written\n\n",
				policy.Name(), report.Dur(time.Since(start)), rs.ObjectsMoved, rs.PagesRead, rs.PagesWritten)
		}
	}

	warm, err := r.RunPhase("warm", p.HotN, p.Seed+2)
	if err != nil {
		return err
	}
	printPhase(warm)

	final := db.Store.Stats()
	fmt.Printf("totals: %d transaction I/Os, %d clustering I/Os, %d objects accessed, hit ratio %.2f\n",
		final.Disk.TransactionIOs(), final.Disk.ClusteringIOs(),
		final.ObjectsAccessed, final.Pool.HitRatio())
	return nil
}

func printPhase(m *core.PhaseMetrics) {
	t := report.New(fmt.Sprintf("%s run — %d transactions in %s (mean %.1f I/Os per tx)",
		m.Name, m.Transactions, report.Dur(m.Duration), m.MeanIOsPerTx()),
		"Type", "Count", "Mean response (µs)", "P95 (µs)", "Mean objects", "Mean I/Os")
	for typ := core.TxType(0); typ < core.NumTxTypes; typ++ {
		tm := m.PerType[typ]
		if tm.Count == 0 {
			continue
		}
		t.AddRow(typ.String(), report.I64(tm.Count), report.F1(tm.Response.Mean()),
			report.F1(tm.ResponseQ.P95()), report.F1(tm.Objects.Mean()), report.F1(tm.IOs.Mean()))
	}
	t.AddRow("all", report.I64(m.Transactions), report.F1(m.Global.Response.Mean()),
		report.F1(m.Global.ResponseQ.P95()), report.F1(m.Global.Objects.Mean()),
		report.F1(m.Global.IOs.Mean()))
	_ = t.Render(os.Stdout)
}
