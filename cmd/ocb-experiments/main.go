// Command ocb-experiments regenerates every table and figure of the OCB
// paper's evaluation (Section 4), plus the ablations catalogued in
// DESIGN.md.
//
// Usage:
//
//	ocb-experiments [-quick] [-csv] [-seed N] [-backend name]
//	                [-backend-opt k=v]... [-run list] [experiment ...]
//
// -backend aims every experiment at a registered driver (default "paged");
// experiments needing a capability the driver lacks (physical relocation,
// mostly) print a skip line instead of failing.
//
// -run (or positional experiment names, e.g. `ocb-experiments compare`)
// selects a comma-separated subset of:
//
//	table1 table2 table3 fig4 table4 table5 genericity compare types
//	policies buffer clients scale scenarios load reverse dstc-sens oo1
//	hypermodel oo7 all
//
// `compare` is the cross-backend genericity table: the same workload seed
// aimed at every registered backend driver, one row per backend.
package main

import (
	_ "ocb/internal/backend/all"

	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ocb/internal/backend"
	"ocb/internal/exp"
	"ocb/internal/report"
)

var experiments = []struct {
	name string
	desc string
	run  func(exp.Config) (*report.Table, error)
}{
	{"table1", "OCB database parameters (paper Table 1)", exp.Table1},
	{"table2", "OCB workload parameters (paper Table 2)", exp.Table2},
	{"table3", "OCB parameters approximating DSTC-CluB (paper Table 3)", exp.Table3},
	{"fig4", "database creation time vs size (paper Figure 4)", exp.Fig4},
	{"table4", "DSTC via DSTC-CluB vs OCB (paper Table 4)", exp.Table4},
	{"table5", "DSTC under the default mixed workload (paper Table 5)", exp.Table5},
	{"genericity", "OO1 traversal shape from OCB parameters", exp.GenericityCheck},
	{"compare", "cross-backend comparison: same workload seed, one row per registered backend", exp.Genericity},
	{"types", "per-transaction-type metrics", exp.TypeBreakdown},
	{"policies", "A1: clustering policy shoot-out", exp.Policies},
	{"buffer", "A2: buffer size sweep", exp.BufferSweep},
	{"clients", "A3: multi-client scaling", exp.MultiClient},
	{"scale", "multi-client scalability sweep (sharded store, shared database)", exp.Scalability},
	{"scenarios", "every scenario preset through the unified workload engine", exp.Scenarios},
	{"load", "latency under load: open-loop arrival-rate ladder + max sustainable rate per local backend", exp.Load},
	{"reverse", "A4: forward vs reversed traversals", exp.Reverse},
	{"dstc-sens", "A5: DSTC parameter sensitivity", exp.DSTCSensitivity},
	{"generic", "A6: fully generic workload (Section 5 extension)", exp.GenericWorkload},
	{"rootskew", "A7: transaction-root distribution skew", exp.RootSkew},
	{"sim", "A8: simulated 1992 testbed (queueing model)", exp.SimulatedTestbed},
	{"oo1", "OO1 benchmark suite", exp.OO1Suite},
	{"hypermodel", "HyperModel benchmark suite", exp.HyperModelSuite},
	{"oo7", "OO7 benchmark suite", exp.OO7Suite},
}

func main() {
	quick := flag.Bool("quick", false, "scaled-down geometry (seconds instead of minutes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Int64("seed", 0, "seed offset applied to every experiment")
	run := flag.String("run", "all", "comma-separated experiment list (see -list)")
	list := flag.Bool("list", false, "list available experiments and exit")
	backendName := flag.String("backend", backend.DefaultName,
		fmt.Sprintf("system-under-test backend: %s", strings.Join(backend.List(), " | ")))
	var backendOpts backend.OptionFlags
	flag.Var(&backendOpts, "backend-opt",
		"backend-specific option key=value (repeatable), validated by the driver")
	flag.Parse()

	// Subcommand form: `ocb-experiments compare` (or any experiment name)
	// is shorthand for -run with that selection. Mixing it with an explicit
	// -run would silently drop one of the two selections, so reject it.
	if args := flag.Args(); len(args) > 0 {
		runSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "run" {
				runSet = true
			}
		})
		if runSet {
			fmt.Fprintf(os.Stderr, "ocb-experiments: both -run %q and positional selection %q given; use one\n",
				*run, strings.Join(args, ","))
			os.Exit(2)
		}
		*run = strings.Join(args, ",")
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	known := map[string]bool{"all": true}
	for _, e := range experiments {
		known[e.name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		if !known[name] {
			// Catches both typos and flags placed after a positional
			// experiment name (flag.Parse stops at the first positional
			// arg, so `compare -backend x` would silently drop -backend).
			fmt.Fprintf(os.Stderr, "ocb-experiments: unknown experiment %q (flags must precede experiment names; try -list)\n", name)
			os.Exit(2)
		}
		selected[name] = true
	}
	opts, err := backend.ParseOptions(backendOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ocb-experiments: %v\n", err)
		os.Exit(2)
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed, Backend: *backendName, BackendOptions: opts}

	ran := 0
	for _, e := range experiments {
		if !selected["all"] && !selected[e.name] {
			continue
		}
		ran++
		start := time.Now()
		tb, err := e.run(cfg)
		if errors.Is(err, backend.ErrNotSupported) {
			// The selected backend lacks a capability this experiment
			// needs (physical relocation, mostly): report, move on.
			fmt.Printf("  [%s skipped on backend %q: %v]\n\n", e.name, *backendName, err)
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocb-experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n", tb.Title)
			if err := tb.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ocb-experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ocb-experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  [%s in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ocb-experiments: nothing selected by -run=%s (try -list)\n", *run)
		os.Exit(2)
	}
}
